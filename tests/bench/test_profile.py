"""``spam-bench profile``: the critical-path profiling suite end to end."""

import json

import pytest

from repro.bench.benchjson import make_report
from repro.bench.profile import COVERAGE_FLOOR, render_dashboard, run_profile
from repro.obs.export import chrome_trace
from repro.obs.schema import (
    validate_bench_report,
    validate_chrome_trace,
)


@pytest.fixture(scope="module")
def data():
    return run_profile(quick=True, period_us=25.0, topk=3)


@pytest.fixture(scope="module")
def report(data):
    return make_report("obsprofile", data["entries"], obs=data["obs"],
                       extra={"profile": data["profile"]})


def test_profile_passes_its_own_gates(data):
    assert data["ok"] is True
    cov = data["profile"]["workloads"]["pingpong"]["coverage"]
    assert cov["coverage"] >= COVERAGE_FLOOR
    assert data["profile"]["workloads"]["soak"]["violations"] == []


def test_three_workloads_each_carry_the_evidence_bundle(data):
    workloads = data["profile"]["workloads"]
    assert set(workloads) == {"pingpong", "bulk", "soak"}
    for w in workloads.values():
        assert w["spans"] > 0
        assert w["sampler_ticks"] > 0
        assert "ALL" in w["rollup"]
        assert w["verdict"]["stage"] is not None
        assert w["exemplars"]
        assert len(w["exemplars"]) <= 3
        assert w["gauges"]              # sampler summaries present
    assert workloads["soak"]["injected"] > 0


def test_report_entries_include_rtt_and_coverage(data):
    names = [name for name, _, _ in data["entries"]]
    assert "pingpong rtt (us)" in names
    assert "pingpong attribution coverage" in names


def test_report_is_json_safe_and_schema_valid(report):
    json.dumps(report)                  # no sets / objects leaked through
    assert validate_bench_report(report) == []


def test_schema_rejects_malformed_profile_sections(report):
    broken = json.loads(json.dumps(report))
    del broken["profile"]["workloads"]
    assert validate_bench_report(broken)

    broken = json.loads(json.dumps(report))
    broken["profile"]["workloads"]["pingpong"]["rollup"] = {}
    assert validate_bench_report(broken)

    broken = json.loads(json.dumps(report))
    broken["profile"]["workloads"]["pingpong"]["coverage"] = {"nope": 1}
    assert validate_bench_report(broken)

    broken = json.loads(json.dumps(report))
    broken["profile"] = "not a dict"
    assert validate_bench_report(broken)


def test_dashboard_renders_every_workload(data):
    text = render_dashboard(data)
    assert "critical-path profile" in text
    for wname in ("pingpong", "bulk", "soak"):
        assert wname in text
    assert "bottleneck:" in text
    assert "attribution:" in text
    assert "slowest message:" in text


def test_pingpong_trace_exports_counter_tracks(data):
    trace = chrome_trace(data["obs"])
    assert validate_chrome_trace(trace) == []
    assert any(e.get("ph") == "C" for e in trace["traceEvents"])


def test_cli_validate_subcommand(tmp_path, report):
    from repro.cli import main

    good = tmp_path / "BENCH_obsprofile.json"
    good.write_text(json.dumps(report))
    assert main(["validate", str(good)]) == 0

    bad = tmp_path / "BENCH_broken.json"
    broken = json.loads(json.dumps(report))
    broken["profile"] = "not a dict"
    bad.write_text(json.dumps(broken))
    assert main(["validate", str(bad)]) != 0
    assert main(["validate", str(good), str(bad)]) != 0
