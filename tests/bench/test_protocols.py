"""The protocol-comparison bench (repro.bench.protocols).

Real measurement at one small size per curve (keeping the suite fast),
plus pure-function coverage of the crossover gate and report rows that
``spam-bench protocols`` and the committed BENCH_protocols.json rely on.
"""

from repro.bench.protocols import (
    CROSSOVER_FACTOR,
    CURVES,
    crossover_problems,
    measure_curve,
    report_entries,
    run_protocols,
)


def _fake(eager, rdzv, crossover=8064):
    return {
        "crossover_bytes": crossover,
        "crossover_factor": CROSSOVER_FACTOR,
        "curves": {
            "eager": eager, "rendezvous": rdzv,
            "mpl": [(n, 20.0) for n, _ in eager],
            "mpi-f": [(n, 25.0) for n, _ in eager],
        },
        "latency_us": {
            "eager": [(n, 100.0) for n, _ in eager],
            "rendezvous": [(n, 90.0) for n, _ in rdzv],
        },
    }


class TestCrossoverGate:
    def test_rendezvous_ahead_everywhere_passes(self):
        data = _fake([(8064, 33.0), (64512, 33.0)],
                     [(8064, 28.0), (64512, 35.0)])
        assert crossover_problems(data) == []

    def test_slow_rendezvous_below_floor_is_allowed(self):
        # 2x crossover is below the 4x floor: eager may win there
        data = _fake([(16128, 33.0), (64512, 33.0)],
                     [(16128, 30.0), (64512, 35.0)])
        assert crossover_problems(data) == []

    def test_slow_rendezvous_above_floor_is_flagged(self):
        data = _fake([(64512, 33.0)], [(64512, 31.0)])
        problems = crossover_problems(data)
        assert len(problems) == 1
        assert "64512" in problems[0]


class TestReportRows:
    def test_entries_cover_every_curve_and_the_gate(self):
        data = _fake([(8064, 33.0)], [(8064, 28.0)])
        data["crossover_ok"] = True
        names = [name for name, _p, _m in report_entries(data)]
        for curve in CURVES:
            assert f"{curve} 8064B (MB/s)" in names
        assert "rendezvous/eager latency ratio 8064B" in names
        assert any("4x crossover" in n for n in names)

    def test_gate_row_encodes_failure(self):
        data = _fake([(64512, 33.0)], [(64512, 30.0)])
        data["crossover_ok"] = False
        gate = [m for n, _p, m in report_entries(data)
                if "crossover" in n][0]
        assert gate == 0.0


class TestMeasurement:
    def test_every_curve_measures_positive_bandwidth(self):
        for curve in CURVES:
            bw = measure_curve(curve, 1024, total=30_000)
            assert bw > 0, curve

    def test_run_protocols_tiny_sweep_is_well_formed(self):
        data = run_protocols(sizes=[1024])
        assert data["sizes"] == [1024]
        assert set(data["curves"]) == set(CURVES)
        assert all(len(series) == 1 for series in data["curves"].values())
        # no size reaches the 4x-crossover floor, so the gate is vacuous
        assert data["crossover_ok"] is True
