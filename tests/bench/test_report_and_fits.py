"""Unit tests for the benchmark harness: formatting, curve fitting."""

import pytest

from repro.bench.bandwidth import n_half, r_inf
from repro.bench.report import fmt_series, fmt_table, paper_vs_measured


class TestFormatting:
    def test_fmt_table_aligns_and_rounds(self):
        out = fmt_table("T", ["a", "b"], [(1, 2.345), ("x", 7)], width=6)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.35" in out
        assert "x" in out

    def test_fmt_series_merges_x_axes(self):
        out = fmt_series("S", {"one": [(1, 10.0), (4, 40.0)],
                               "two": [(2, 20.0)]})
        assert out.count("\n") >= 4
        assert "-" in out  # missing points rendered as '-'

    def test_paper_vs_measured_deviation(self):
        out = paper_vs_measured("PV", [("q", 100.0, 110.0)])
        assert "+10.0%" in out

    def test_paper_vs_measured_nonnumeric_paper(self):
        out = paper_vs_measured("PV", [("q", ">3200", 5000.0)])
        assert ">3200" in out
        assert "%" not in out.splitlines()[-1]

    def test_units_footer(self):
        out = paper_vs_measured("PV", [("q", 1.0, 1.0)], unit="us")
        assert out.endswith("(units: us)")


class TestCurveFits:
    def _ideal_series(self, bw=34.3, overhead=20.0):
        """T(n) = overhead + n / bw."""
        return [(n, n / (overhead + n / bw))
                for n in (256, 1024, 4096, 16384, 65536, 262144, 1048576)]

    def test_r_inf_recovers_asymptote(self):
        series = self._ideal_series(bw=34.3)
        assert r_inf(series) == pytest.approx(34.3, rel=0.02)

    def test_n_half_recovers_half_power_point(self):
        bw, ov = 34.3, 20.0
        series = self._ideal_series(bw, ov)
        # analytic n1/2 of the ideal model is overhead * bw
        assert n_half(series, bw) == pytest.approx(ov * bw, rel=0.25)

    def test_n_half_unreachable_raises(self):
        series = [(256, 1.0), (1024, 2.0)]
        with pytest.raises(ValueError):
            n_half(series, asymptote=34.3)

    def test_n_half_interpolates_between_points(self):
        series = [(100, 10.0), (1000, 30.0), (10000, 34.0)]
        nh = n_half(series, asymptote=34.0)
        assert 100 < nh < 1000


class TestCli:
    def test_cli_help_lists_experiments(self, capsys):
        from repro.cli import main

        assert main([]) == 0
        out = capsys.readouterr().out
        for word in ("table3", "fig8", "nas"):
            assert word in out

    def test_cli_roundtrip_runs(self, capsys):
        from repro.cli import main

        assert main(["roundtrip", "--no-report"]) == 0
        out = capsys.readouterr().out
        assert "51.0" in out and "IBM MPL" in out

    def test_cli_table2_runs(self, capsys):
        from repro.cli import main

        assert main(["table2", "--no-report"]) == 0
        out = capsys.readouterr().out
        assert "am_request_1" in out
