"""Tests for the randomized conformance campaigns (repro.check.campaign)."""

import pytest

from repro.check import generate_ops, run_campaign, shrink_failure

VIOLATE = {"kind": "violate", "rank": 1, "peer": 2, "offset": 12321}


class TestGenerateOps:
    def test_deterministic_per_seed(self):
        assert generate_ops(5) == generate_ops(5)
        assert generate_ops(5) != generate_ops(6)

    def test_shapes(self):
        ops = generate_ops(9, nodes=4, nops=40)
        assert len(ops) == 40
        kinds = {op["kind"] for op in ops}
        assert kinds <= {"p2p", "self", "coll", "waitmix"}
        for op in ops:
            assert op["comm"] in ("world", "rot", "even", "odd")


class TestRunCampaign:
    def test_clean_campaign_exercises_every_checker_kind(self):
        r = run_campaign(1, nodes=4, nops=12)
        assert r.ok, r.violations
        assert not r.aborted
        for kind in ("fifo", "window", "request", "alloc", "sched"):
            assert r.checks.get(kind, 0) > 0, f"{kind} checker never ran"
        assert r.delivered_units > 0

    def test_campaign_is_deterministic(self):
        a = run_campaign(2, nodes=4, nops=10)
        b = run_campaign(2, nodes=4, nops=10)
        assert a.ok and b.ok
        assert (a.digest, a.delivered_units) == (b.digest, b.delivered_units)

    def test_lossy_campaign_stays_clean(self):
        r = run_campaign(3, nodes=4, nops=10, loss=0.01)
        assert r.ok, r.violations

    def test_violation_detected_and_named(self):
        ops = generate_ops(4, nodes=4, nops=6) + [VIOLATE]
        r = run_campaign(4, nodes=4, op_list=ops)
        assert not r.ok
        assert any("free of unallocated offset 12321" in v
                   for v in r.violations)
        assert any(v.startswith("[alloc[1->2].free]") for v in r.violations)

    def test_only_restricts_checkers(self):
        r = run_campaign(1, nodes=4, nops=6, only=["sched"])
        assert r.ok
        assert set(r.checks) == {"sched"}


class TestWorkersBackend:
    """workers=P campaigns must reach the same verdict, counts, and
    delivery digest as every sequential engine (satellite of the
    multiprocessing-shard-workers PR)."""

    _FIELDS = ("violations", "checks", "delivered_units", "digest",
               "elapsed_us", "aborted")

    def test_workers_campaign_matches_sequential(self):
        ref = run_campaign(2, nodes=4, nops=10)
        w = run_campaign(2, nodes=4, nops=10, workers=2)
        assert w.ok, w.violations
        for f in self._FIELDS:
            assert getattr(w, f) == getattr(ref, f), f

    def test_lossy_workers_campaign_matches_sharded(self):
        ref = run_campaign(3, nodes=4, nops=10, loss=0.01, sharding=True)
        w = run_campaign(3, nodes=4, nops=10, loss=0.01, workers=4)
        assert w.ok, w.violations
        for f in self._FIELDS:
            assert getattr(w, f) == getattr(ref, f), f

    def test_worker_side_failure_aborts_with_cause(self):
        # a raising op inside a worker must surface as a clean abort
        # naming the cause, not a deadlocked barrier
        ops = generate_ops(4, nodes=4, nops=6) + [VIOLATE]
        r = run_campaign(4, nodes=4, op_list=ops, workers=2)
        assert not r.ok and r.aborted
        assert any("overlapping free" in v for v in r.violations)

    def test_worker_complaints_ship_to_parent(self):
        from repro.check.campaign import _CheckCampaign
        ops = generate_ops(5, nodes=4, nops=4)
        camp = _CheckCampaign(5, 4, ops, 0.0, True, 5e7, None,
                              xfer_mode="eager", sharding=True, workers=2)
        orig = camp._run_op

        def noisy(i, op, w):
            if i == 0:
                camp._complain(w, i, "synthetic complaint")
            yield from orig(i, op, w)

        camp._run_op = noisy
        camp.run()
        assert sum("synthetic complaint" in v
                   for v in camp.violations) == 4

    def test_workers_require_sharding(self):
        from repro.check.campaign import _CheckCampaign
        with pytest.raises(ValueError):
            _CheckCampaign(1, 4, [], 0.0, True, 5e7, None,
                           xfer_mode="eager", sharding=False, workers=2)


class TestShrink:
    def test_clean_campaign_does_not_reproduce(self):
        s = shrink_failure(1, nodes=4, nops=6)
        assert not s.reproduced
        assert s.minimal == []

    def test_shrinks_to_the_offending_op(self):
        ops = generate_ops(7, nodes=4, nops=9) + [VIOLATE]
        s = shrink_failure(7, nodes=4, op_list=ops)
        assert s.reproduced
        assert s.minimal == [VIOLATE]
        assert s.original_nops == 10
        assert any("unallocated offset" in v for v in s.violations)


@pytest.mark.slow
def test_twenty_seed_sweep_is_clean():
    """The acceptance sweep: 20 seeds, every third under 1% loss."""
    for k in range(20):
        r = run_campaign(100 + k, nodes=4, nops=24,
                         loss=0.01 if k % 3 == 2 else 0.0)
        assert r.ok, (r.seed, r.violations)
