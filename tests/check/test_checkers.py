"""Unit and property tests for the invariant checkers (repro.check.core).

Two obligations per checker: a clean run through the *real* component
hooks stays silent, and a seeded violation is caught with the offending
operation named in the message.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.am.window import RecvWindow, SendWindow
from repro.check import InvariantViolation, Sanitizer
from repro.check.core import (
    AllocCheck,
    RecvFifoCheck,
    RecvWindowCheck,
    RequestCheck,
    SchedulerCheck,
    SendFifoCheck,
    SendWindowCheck,
)
from repro.hardware.fifo import RecvFIFO, SendFIFO
from repro.hardware.packet import Packet, PacketKind
from repro.mpi.allocator import FirstFitAllocator
from repro.mpi.request import Request
from repro.sim import Simulator


def pkt(seq=0, chunk_packets=1, offset=0):
    return Packet(src=0, dst=1, kind=PacketKind.REQUEST, seq=seq,
                  chunk_packets=chunk_packets, offset=offset)


class TestSendFifoCheck:
    def test_clean_cycle_is_silent(self):
        f = SendFIFO(8)
        ck = SendFifoCheck(Sanitizer(), "send_fifo[t]", f)
        f.check = ck
        for i in range(5):
            f.stage(pkt(i))
        f.arm(3)
        for _ in range(3):
            f.take_armed()
        f.arm()
        while f.take_armed() is not None:
            pass
        assert ck.checks > 0

    def test_take_without_arm_caught(self):
        f = SendFIFO(8)
        ck = SendFifoCheck(Sanitizer(), "send_fifo[t]", f)
        f.check = ck
        f.stage(pkt())
        # bypass arm(): pull the packet out behind the ledger's back
        f._armed.append(f._staged.popleft())
        with pytest.raises(InvariantViolation,
                           match=r"\[send_fifo\[t\]\.take\].*armed"):
            f.take_armed()

    @given(ops=st.lists(st.sampled_from(["stage", "arm", "take"]),
                        max_size=60))
    def test_any_legal_sequence_is_silent(self, ops):
        f = SendFIFO(16)
        f.check = SendFifoCheck(Sanitizer(), "send_fifo[t]", f)
        n = 0
        for op in ops:
            if op == "stage" and f.free_entries > 0:
                f.stage(pkt(n))
                n += 1
            elif op == "arm":
                f.arm(1)
            elif op == "take":
                f.take_armed()


class TestRecvFifoCheck:
    def test_clean_cycle_is_silent(self):
        f = RecvFIFO(capacity=8, lazy_pop_batch=2)
        ck = RecvFifoCheck(Sanitizer(), "recv_fifo[t]", f)
        f.check = ck
        for i in range(4):
            assert f.reserve()
            f.deliver(pkt(i))
        for _ in range(4):
            f.consume()
            if f.should_pop():
                f.pop_batch()
        f.pop_batch()
        ck.at_quiescence()
        assert ck.checks > 0

    def test_deliver_without_reserve_caught(self):
        f = RecvFIFO(capacity=8)
        f.check = RecvFifoCheck(Sanitizer(), "recv_fifo[t]", f)
        with pytest.raises(InvariantViolation,
                           match=r"\[recv_fifo\[t\]\.deliver\].*reserved"):
            f.deliver(pkt())

    def test_slot_leak_caught_at_quiescence(self):
        f = RecvFIFO(capacity=8)
        ck = RecvFifoCheck(Sanitizer(), "recv_fifo[t]", f)
        f.check = ck
        f.reserve()  # slot claimed, packet never delivered nor popped
        with pytest.raises(InvariantViolation,
                           match=r"quiescence\] slot leak"):
            ck.at_quiescence()


class TestSendWindowCheck:
    def _checked(self, window=8):
        w = SendWindow(window)
        w.check = SendWindowCheck(Sanitizer(), "send_window[t]", w)
        return w

    def test_clean_traffic_is_silent(self):
        w = self._checked()
        s0 = w.allocate(1)
        w.save(s0, [pkt(s0)])
        s1 = w.allocate(4)
        w.save(s1, [pkt(s1, 4, o) for o in range(4)])
        w.on_ack(1)     # first unit
        w.on_ack(5)     # the whole chunk as one unit
        assert w.check.checks > 0

    def test_mid_chunk_ack_caught_and_named(self):
        w = self._checked()
        seq = w.allocate(4)
        w.save(seq, [pkt(seq, 4, o) for o in range(4)])
        # the checker names the violating ack before MidChunkAckError
        with pytest.raises(InvariantViolation,
                           match=r"\.ack\].*not unit-aligned"):
            w.on_ack(2)

    def test_ack_beyond_allocation_caught(self):
        w = self._checked()
        w.save(w.allocate(1), [pkt(0)])
        with pytest.raises(InvariantViolation,
                           match=r"\.ack\].*never allocated"):
            w.on_ack(7)

    def test_backwards_ack_caught(self):
        w = self._checked()
        ck = w.check
        for _ in range(3):
            w.save(w.allocate(1), [pkt(0)])
        w.on_ack(3)
        # the real window early-returns on ack <= base, so drive the
        # checker directly: a regressing cumulative ack must be flagged
        ck.max_ack = 5
        with pytest.raises(InvariantViolation, match="moved backwards"):
            ck.on_ack(w, 3)


class TestRecvWindowCheck:
    def test_in_order_delivery_is_silent(self):
        w = RecvWindow(window=8, ack_threshold=2)
        ck = RecvWindowCheck(Sanitizer(), "recv_window[t]", w)
        w.check = ck
        for seq in range(3):
            verdict, done = w.accept(pkt(seq))
            assert verdict == "deliver" and done
        assert ck.delivered_units == 3
        assert ck.digest != 0

    def test_duplicate_delivery_caught(self):
        w = RecvWindow(window=8, ack_threshold=2)
        ck = RecvWindowCheck(Sanitizer(), "recv_window[t]", w)
        w.check = ck
        w.accept(pkt(0))
        # the window classifies a replay as duplicate; a double *deliver*
        # can only come from broken reassembly — drive the hook directly
        with pytest.raises(InvariantViolation,
                           match=r"\.deliver\].*exactly-once"):
            ck.on_deliver(w, 0, 1)


class TestRequestCheck:
    def _req(self):
        return Request("recv", None, 0, 0)

    def test_clean_lifecycle_is_silent(self):
        ck = RequestCheck(Sanitizer(), "request[t]")
        r = self._req()
        ck.on_new(r)
        ck.on_posted(r)
        ck.on_matched(r)
        r.check = ck
        r.complete(b"x", source=0, tag=0)
        r.free()
        assert ck.checks >= 5

    def test_complete_twice_caught(self):
        ck = RequestCheck(Sanitizer(), "request[t]")
        r = self._req()
        ck.on_matched(r)
        r.complete(b"x")
        with pytest.raises(InvariantViolation, match="completed twice"):
            r.complete(b"y")

    def test_progress_on_freed_request_caught(self):
        ck = RequestCheck(Sanitizer(), "request[t]")
        r = self._req()
        ck.on_matched(r)
        r.complete(b"x")
        r.free()
        with pytest.raises(InvariantViolation, match="freed request"):
            ck.on_progress(r)

    def test_double_post_caught(self):
        ck = RequestCheck(Sanitizer(), "request[t]")
        r = self._req()
        ck.on_posted(r)
        with pytest.raises(InvariantViolation, match="posted twice"):
            ck.on_posted(r)

    def test_completion_of_unmatched_posted_recv_caught(self):
        ck = RequestCheck(Sanitizer(), "request[t]")
        r = self._req()
        ck.on_posted(r)
        with pytest.raises(InvariantViolation, match="never matched"):
            ck.on_complete(r)


class TestAllocCheck:
    def _checked(self, capacity=4096):
        a = FirstFitAllocator(capacity)
        a.check = AllocCheck(Sanitizer(), "alloc[t]", a)
        return a

    def test_clean_alloc_free_is_silent(self):
        a = self._checked()
        offs = [a.alloc(128) for _ in range(4)]
        for off in offs:
            a.free(off, 128)
        assert a.check.outstanding_bytes == 0
        assert a.check.checks == 8

    def test_free_of_unallocated_offset_caught(self):
        a = self._checked()
        with pytest.raises(InvariantViolation,
                           match=r"\.free\] free of unallocated offset"):
            a.free(12321, 64)

    def test_free_with_wrong_length_caught(self):
        a = self._checked()
        off = a.alloc(128)
        with pytest.raises(InvariantViolation,
                           match="but 128 were allocated"):
            a.free(off, 64)

    @given(sizes=st.lists(st.integers(min_value=1, max_value=512),
                          min_size=1, max_size=30))
    def test_any_alloc_free_interleave_is_silent(self, sizes):
        a = self._checked(16384)
        live = []
        for i, nbytes in enumerate(sizes):
            off = a.alloc(nbytes)
            if off is not None:
                live.append((off, nbytes))
            if i % 3 == 2 and live:
                a.free(*live.pop(0))
        for off, nbytes in live:
            a.free(off, nbytes)
        assert a.check.outstanding_bytes == 0


class TestSchedulerCheck:
    def test_clean_run_with_timers_is_silent(self):
        sim = Simulator()
        san = Sanitizer().watch_sim(sim)
        fired = []
        sim.schedule(2.0, fired.append, "a")
        sim.schedule(1.0, fired.append, "b")
        h = sim.call_later(3.0, fired.append, "never")
        h.cancel()
        sim.call_later(4.0, fired.append, "c")
        sim.run()
        assert fired == ["b", "a", "c"]
        ck = sim.check
        assert ck.cancelled == 1 and ck.stale_skipped == 1
        assert san.snapshot()["sched"] == ck.checks

    def test_resurrected_tombstone_caught(self):
        sim = Simulator()
        Sanitizer().watch_sim(sim)
        fired = []
        h = sim.call_later(5.0, fired.append, "ghost")
        entry = h._entry
        h.cancel()
        # un-tombstone the queue entry behind the handle's back: the
        # firing now comes from a generation the handle already retired
        entry[2] = h._fire
        entry[3] = (fired.append, ("ghost",))
        with pytest.raises(InvariantViolation, match="stale generation"):
            sim.run()

    def test_out_of_order_execution_caught(self):
        sim = Simulator()
        ck = SchedulerCheck(Sanitizer(), "sched", sim)
        ck.on_execute([1.0, 5, None, ()])
        with pytest.raises(InvariantViolation, match="consumed .* after"):
            ck.on_execute([1.0, 4, None, ()])


class TestSanitizer:
    def test_collect_mode_accumulates_without_raising(self):
        san = Sanitizer(collect=True)
        a = FirstFitAllocator(1024)
        a.check = AllocCheck(san, "alloc[t]", a)
        for off in (1, 2):
            # in collect mode the checker records first, then the
            # allocator's own structural guard still fires
            with pytest.raises(ValueError, match="overlapping free"):
                a.free(off, 8)
        assert len(san.violations) == 2
        assert all("unallocated" in str(v) for v in san.violations)

    def test_violation_names_checker_and_op(self):
        san = Sanitizer(collect=True)
        a = FirstFitAllocator(1024)
        a.check = AllocCheck(san, "alloc[3->1]", a)
        with pytest.raises(ValueError):
            a.free(7, 8)
        assert str(san.violations[0]).startswith("[alloc[3->1].free] ")

    def test_only_filter_limits_attachment(self):
        sim = Simulator()
        Sanitizer(only=["fifo"]).watch_sim(sim)
        assert sim.check is None
        Sanitizer(only=["sched"]).watch_sim(sim)
        assert sim.check is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown checker kinds"):
            Sanitizer(only=["fifo", "quantum"])
