"""RdmaCheck: the rendezvous grant ledger under the sanitizer.

Same two obligations as every checker: real rendezvous traffic through
the live hooks stays silent (and counts checks), and each seeded
violation — double grant, overlapping regions, write without CTS,
out-of-bounds write, premature/duplicate FIN, grant leaked past
quiescence — is caught with the offending grant named.
"""

import pytest

from repro.am import attach_spam
from repro.am.constants import CHUNK_BYTES
from repro.am.endpoint import _RdmaGrant
from repro.check import InvariantViolation, Sanitizer, run_campaign
from repro.hardware import build_sp_machine
from repro.hardware.packet import Packet, PacketKind
from repro.sim import Simulator


def _attached(collect=False):
    """2-node rendezvous pair with the sanitizer attached."""
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(m, xfer_mode="rendezvous")
    san = Sanitizer(collect=collect)
    san.attach(m)
    return m, am0, am1, san


def _grant(src=0, token=1, addr=1000, total_len=64):
    return _RdmaGrant(src, token, addr, total_len, 0, (), 0.0)


def _data_pkt(src=0, token=1, offset=0, payload=b"x" * 16):
    return Packet(src=src, dst=1, kind=PacketKind.RDMA_DATA,
                  op_token=token, offset=offset, payload=payload)


def _fin_pkt(src=0, token=1):
    return Packet(src=src, dst=1, kind=PacketKind.RDMA_FIN, op_token=token)


class TestCleanTraffic:
    def test_real_transfer_is_silent_and_counted(self):
        m, am0, am1, san = _attached()
        n = 2 * CHUNK_BYTES + 9
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        def receiver():
            while not flag[0]:
                yield from am1._wait_progress()

        p = m.sim.spawn(sender(), name="s")
        m.sim.spawn(receiver(), name="r")
        m.sim.run_until_processes_done([p], limit=1e8)
        san.check_quiescent()
        ck = am1.rdma_check
        assert ck.checks > 0
        assert ck.granted == 1 and ck.released == 1
        assert ck.bytes_written == n
        assert ck.live == {}


class TestSeededViolations:
    def test_double_grant_caught(self):
        _m, _am0, am1, _san = _attached()
        ck = am1.rdma_check
        ck.on_grant(am1, _grant())
        with pytest.raises(InvariantViolation, match="issued twice"):
            ck.on_grant(am1, _grant())

    def test_malformed_grant_caught(self):
        _m, _am0, am1, _san = _attached()
        with pytest.raises(InvariantViolation, match="malformed"):
            am1.rdma_check.on_grant(am1, _grant(total_len=0))

    def test_overlapping_grants_caught(self):
        _m, _am0, am1, _san = _attached()
        ck = am1.rdma_check
        ck.on_grant(am1, _grant(token=1, addr=1000, total_len=100))
        with pytest.raises(InvariantViolation, match="overlaps"):
            ck.on_grant(am1, _grant(token=2, addr=1050, total_len=100))

    def test_write_without_grant_caught(self):
        _m, _am0, am1, _san = _attached()
        with pytest.raises(InvariantViolation,
                           match="CTS-before-write"):
            am1.rdma_check.on_write(am1, None, _data_pkt())

    def test_out_of_bounds_write_caught(self):
        _m, _am0, am1, _san = _attached()
        ck = am1.rdma_check
        g = _grant(total_len=64)
        ck.on_grant(am1, g)
        with pytest.raises(InvariantViolation, match="outside granted"):
            ck.on_write(am1, g, _data_pkt(offset=60, payload=b"y" * 16))

    def test_fin_before_all_bytes_caught(self):
        _m, _am0, am1, _san = _attached()
        ck = am1.rdma_check
        g = _grant(total_len=64)
        ck.on_grant(am1, g)
        g.received = 32
        with pytest.raises(InvariantViolation, match="32 of 64"):
            ck.on_fin(am1, g, _fin_pkt())

    def test_duplicate_fin_caught(self):
        _m, _am0, am1, _san = _attached()
        ck = am1.rdma_check
        g = _grant(total_len=64)
        ck.on_grant(am1, g)
        g.received = 64
        ck.on_fin(am1, g, _fin_pkt())
        with pytest.raises(InvariantViolation, match="no active grant"):
            ck.on_fin(am1, None, _fin_pkt())

    def test_grant_leak_caught_at_quiescence(self):
        # a CTS grant whose sender went away must be flagged as a region
        # leak when the campaign claims quiescence
        _m, _am0, am1, _san = _attached()
        ck = am1.rdma_check
        g = _grant()
        ck.on_grant(am1, g)
        am1._rdma_grants[(g.src, g.token)] = g
        with pytest.raises(InvariantViolation, match="region leak"):
            ck.at_quiescence()

    def test_ledger_desync_caught_at_quiescence(self):
        _m, _am0, am1, _san = _attached()
        ck = am1.rdma_check
        ck.live[(0, 9)] = (500, 32)  # checker thinks a grant is live
        with pytest.raises(InvariantViolation, match="ledger desync"):
            ck.at_quiescence()


class TestCampaigns:
    @pytest.mark.parametrize("xfer_mode", ["rendezvous", "auto"])
    def test_rendezvous_campaigns_clean(self, xfer_mode):
        r = run_campaign(321, nodes=3, nops=16, loss=0.0,
                         xfer_mode=xfer_mode)
        assert r.ok, r.violations
        assert r.xfer_mode == xfer_mode
        assert r.checks.get("rdma", 0) > 0

    def test_lossy_rendezvous_campaign_clean(self):
        # regression for the abort/leak sweep: under loss, every granted
        # region must still be released by quiescence (no leak, no
        # desync) — this seed previously exercised stalled grants
        r = run_campaign(777, nodes=3, nops=20, loss=0.05,
                         xfer_mode="rendezvous")
        assert r.ok, r.violations
        assert r.checks.get("rdma", 0) > 0
