"""The example scripts must run clean end-to-end (they are the doc)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv):
    old = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old


def test_quickstart(capsys):
    run_example("quickstart.py", [])
    out = capsys.readouterr().out
    assert "round trip" in out
    assert "paper: 51.0" in out
    assert "verified" in out


def test_splitc_sort_small_scale(capsys):
    run_example("splitc_sort.py", ["256"])
    out = capsys.readouterr().out
    assert "sp-am" in out and "sp-mpl" in out and "cm5" in out
    assert out.count("True") >= 10  # every run verified sorted


def test_mpi_over_am_mg(capsys):
    run_example("mpi_over_am.py", ["MG"])
    out = capsys.readouterr().out
    assert "MPI-AM" in out and "MPI-F" in out
    assert "ratio" in out


def test_reliability_demo(capsys):
    run_example("reliability_demo.py", ["2"])
    out = capsys.readouterr().out
    assert "data intact after recovery: True" in out
    assert "retransmissions" in out


def test_ft_transpose(capsys):
    run_example("ft_transpose.py", ["1024"])
    out = capsys.readouterr().out
    assert "verified the transposed data" in out
    assert "S4.4" in out and "S5" in out
