"""Unit tests for the fault-injection subsystem: plan validation,
deterministic replay, budgets, targeted triggers, and the observability
of every fault kind at its injection site."""

import pytest

from repro.am import attach_spam
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    install_faults,
)
from repro.hardware import build_sp_machine
from repro.hardware.packet import Packet, PacketKind
from repro.obs.core import Observatory
from repro.sim import Simulator
from tests.am.conftest import run_pair, serve


# ---------------------------------------------------------------------------
# plan validation
# ---------------------------------------------------------------------------

class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="teleport")

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultRule(kind="drop", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule(kind="drop", rate=-0.1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="drop", budget=-1)
        with pytest.raises(ValueError):
            FaultPlan(seed=1, budget=-2)

    def test_negative_after_and_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="drop", after=-1)
        with pytest.raises(ValueError):
            FaultRule(kind="reorder", delay_us=-5.0)

    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            FaultRule(kind=kind)

    def test_plans_are_frozen(self):
        plan = FaultPlan.loss(seed=1, rate=0.5)
        with pytest.raises(AttributeError):
            plan.seed = 2
        with pytest.raises(AttributeError):
            plan.rules[0].rate = 0.9

    def test_chaos_plan_covers_every_kind(self):
        plan = FaultPlan.chaos(seed=1, rate=0.1)
        assert sorted(r.kind for r in plan.rules) == sorted(FAULT_KINDS)


# ---------------------------------------------------------------------------
# injector determinism + bounds (no machine needed)
# ---------------------------------------------------------------------------

def _packets(n, kind=PacketKind.REQUEST):
    out = []
    for i in range(n):
        p = Packet(src=0, dst=1, kind=kind, seq=i)
        p.trace_id = i + 1
        out.append(p)
    return out


class TestInjectorDeterminism:
    def test_same_seed_same_injections(self):
        plan = FaultPlan.chaos(seed=42, rate=0.3)
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan)
            for p in _packets(200):
                inj.at_switch(p, now=float(p.seq))
                inj.at_rx(p, now=float(p.seq))
                inj.tx_stall_us(p, now=float(p.seq))
            runs.append(inj.injected)
        assert runs[0] == runs[1]
        assert len(runs[0]) > 0

    def test_different_seed_different_injections(self):
        def fire(seed):
            inj = FaultInjector(FaultPlan.loss(seed=seed, rate=0.3))
            return [p.seq for p in _packets(200)
                    if inj.at_switch(p, 0.0) is not None]
        assert fire(1) != fire(2)

    def test_global_budget_caps_total(self):
        plan = FaultPlan(seed=1, budget=5,
                         rules=(FaultRule(kind="drop", rate=1.0),))
        inj = FaultInjector(plan)
        fired = sum(inj.at_switch(p, 0.0) is not None for p in _packets(50))
        assert fired == 5
        assert inj.budget_left == 0

    def test_per_rule_budget(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="drop", rate=1.0, budget=3),
            FaultRule(kind="duplicate", rate=1.0),
        ))
        inj = FaultInjector(plan)
        kinds = [inj.at_switch(p, 0.0).kind for p in _packets(10)]
        # drop wins while its budget lasts, then duplicate takes over
        assert kinds == ["drop"] * 3 + ["duplicate"] * 7

    def test_after_skips_matching_packets(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="drop", rate=1.0, after=4, budget=1),))
        inj = FaultInjector(plan)
        fired = [p.seq for p in _packets(10)
                 if inj.at_switch(p, 0.0) is not None]
        assert fired == [4]  # 0-indexed: the 5th matching packet

    def test_seq_targeted_trigger(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="drop", seqs=frozenset({7, 9})),))
        inj = FaultInjector(plan)
        fired = [p.seq for p in _packets(20)
                 if inj.at_switch(p, 0.0) is not None]
        assert fired == [7, 9]

    def test_trace_targeted_trigger(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="drop", trace_ids=frozenset({3})),))
        inj = FaultInjector(plan)
        fired = [p.trace_id for p in _packets(20)
                 if inj.at_switch(p, 0.0) is not None]
        assert fired == [3]

    def test_kind_filter(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="drop",
                      packet_kinds=frozenset({PacketKind.STORE_DATA})),))
        inj = FaultInjector(plan)
        assert all(inj.at_switch(p, 0.0) is None for p in _packets(10))
        assert inj.at_switch(
            _packets(1, PacketKind.STORE_DATA)[0], 0.0) is not None

    def test_corrupt_action_fails_crc(self):
        plan = FaultPlan(seed=1, rules=(FaultRule(kind="corrupt"),))
        inj = FaultInjector(plan)
        p = Packet(src=0, dst=1, kind=PacketKind.STORE_DATA, seq=0,
                   payload=b"hello world")
        p.trace_id = 1
        p.checksum = p.compute_checksum()
        act = inj.at_switch(p, 0.0)
        assert act.kind == "corrupt"
        assert p.checksum_ok()                   # original untouched
        assert not act.packet.checksum_ok()      # clone detectably broken
        assert act.packet.trace_id == p.trace_id


# ---------------------------------------------------------------------------
# every kind lands on its hardware site and is observable
# ---------------------------------------------------------------------------

def _machine_with(plan):
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    obs = Observatory().attach(m)
    am0, am1 = attach_spam(m)
    inj = install_faults(m, plan)
    return m, am0, am1, inj, obs


def _ping(m, am0, am1, n=20):
    seen = []

    def handler(token, i):
        seen.append(i)

    flag = [0]

    def sender():
        for i in range(n):
            yield from am0.request_1(1, handler, i)
        while any(w.has_unacked for w in am0._peer(1).send):
            yield from am0._wait_progress()
        flag[0] = 1

    run_pair(m, sender(), serve(am1, flag), wait_both=True, limit=1e8)
    return seen


class TestInjectionSites:
    def test_install_requires_switch_fabric(self):
        from repro.hardware.params import machine_params
        from repro.hardware import build_generic_machine

        sim = Simulator()
        m = build_generic_machine(sim, 2, machine_params("cm5"))
        with pytest.raises(ValueError, match="switch fabric"):
            install_faults(m, FaultPlan.loss(seed=1, rate=0.1))

    def test_drop_counted_and_recovered(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="drop", after=2, budget=1,
                      packet_kinds=frozenset({PacketKind.REQUEST})),))
        m, am0, am1, inj, obs = _machine_with(plan)
        seen = _ping(m, am0, am1)
        assert seen == list(range(20))
        assert inj.counts() == {"drop": 1}
        assert m.switch.stats.get("packets_dropped_fault") == 1
        assert am0.stats.get("retransmissions") > 0

    def test_duplicate_dropped_at_am_layer(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="duplicate", after=2, budget=1,
                      packet_kinds=frozenset({PacketKind.REQUEST})),))
        m, am0, am1, inj, obs = _machine_with(plan)
        seen = _ping(m, am0, am1)
        assert seen == list(range(20))      # exactly once despite the clone
        assert inj.counts() == {"duplicate": 1}
        assert m.switch.stats.get("packets_duplicated_fault") == 1
        assert am1.stats.get("duplicates_dropped") >= 1

    def test_reorder_triggers_nack_recovery(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="reorder", after=2, budget=1, delay_us=300.0,
                      packet_kinds=frozenset({PacketKind.REQUEST})),))
        m, am0, am1, inj, obs = _machine_with(plan)
        seen = _ping(m, am0, am1)
        assert seen == list(range(20))      # in order despite the overtake
        assert inj.counts() == {"reorder": 1}
        assert m.switch.stats.get("packets_reordered_fault") == 1
        # later packets arrived first -> gap -> NACK path fired
        assert am1.stats.get("nacks_sent") >= 1

    def test_corrupt_rejected_by_crc(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="corrupt", after=2, budget=1,
                      packet_kinds=frozenset({PacketKind.REQUEST})),))
        m, am0, am1, inj, obs = _machine_with(plan)
        seen = _ping(m, am0, am1)
        assert seen == list(range(20))
        assert inj.counts() == {"corrupt": 1}
        assert m.node(1).adapter.stats.get("rx_dropped_corrupt") == 1

    def test_rx_overflow_forced(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="rx_overflow", after=2, budget=1,
                      packet_kinds=frozenset({PacketKind.REQUEST})),))
        m, am0, am1, inj, obs = _machine_with(plan)
        seen = _ping(m, am0, am1)
        assert seen == list(range(20))
        assert inj.counts() == {"rx_overflow": 1}
        assert m.node(1).adapter.stats.get("rx_dropped_overflow") == 1

    def test_tx_stall_charged(self):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="tx_stall", after=2, budget=1, delay_us=50.0,
                      packet_kinds=frozenset({PacketKind.REQUEST})),))
        m, am0, am1, inj, obs = _machine_with(plan)
        seen = _ping(m, am0, am1)
        assert seen == list(range(20))
        assert inj.counts() == {"tx_stall": 1}
        assert m.node(0).adapter.stats.get("tx_stalled_fault") == 1

    def test_every_injection_reaches_obs_with_trace_id(self):
        plan = FaultPlan.chaos(seed=5, rate=0.1)
        m, am0, am1, inj, obs = _machine_with(plan)
        seen = _ping(m, am0, am1, n=40)
        assert seen == list(range(40))
        assert inj.total_injected > 0
        for f in inj.injected:
            assert f.trace_id > 0
            assert any(ev["kind"] == f.kind and ev["trace_id"] == f.trace_id
                       and ev["t"] == f.t for ev in obs.fault_events)
        assert obs.snapshot()["fault_events"] == len(obs.fault_events)
