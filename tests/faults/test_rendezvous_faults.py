"""Mid-handshake loss must be recovered, never deadlock.

Each rendezvous control packet (RTS, CTS, RDMA_DATA tail, FIN) is
dropped deterministically with a targeted :class:`FaultRule`; the
transfer must still complete — recovered by the 150 us stall watchdog
(RTS/CTS retransmit, per-source stream NACK) rather than hanging — and
the landed bytes must be exact.
"""

import pytest

from repro.am import attach_spam
from repro.am.constants import CHUNK_BYTES
from repro.faults import FaultPlan, FaultRule, install_faults
from repro.hardware import build_sp_machine
from repro.hardware.packet import PacketKind
from repro.sim import Simulator


def _drop(kind, budget=1, after=0):
    """Plan that deterministically drops ``budget`` packets of ``kind``."""
    return FaultPlan(seed=1, rules=(
        FaultRule(kind="drop", rate=1.0, budget=budget, after=after,
                  packet_kinds=frozenset({kind})),))


def _run_store(plan, nbytes=3 * CHUNK_BYTES + 100):
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(m, xfer_mode="rendezvous")
    inj = install_faults(m, plan)
    data = bytes((i * 41 + 5) % 256 for i in range(nbytes))
    src = m.node(0).memory.alloc(nbytes)
    dst = m.node(1).memory.alloc(nbytes)
    m.node(0).memory.write(src, data)
    flag = [0]

    def sender():
        yield from am0.store(1, src, dst, nbytes)
        flag[0] = 1

    def receiver():
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender(), name="send")
    sim.spawn(receiver(), name="recv")
    sim.run_until_processes_done([p], limit=5e6)
    assert flag[0] == 1, "transfer deadlocked instead of recovering"
    assert m.node(1).memory.read(dst, nbytes) == data
    assert am1._rdma_grants == {}
    return am0, am1, inj


class TestHandshakeLoss:
    def test_dropped_rts_is_retransmitted(self):
        am0, am1, inj = _run_store(_drop(PacketKind.RTS))
        assert len(inj.injected) == 1
        # the sender's stall watchdog resent the saved RTS
        assert am0.stats.get("rts_retransmits") >= 1
        assert am1.stats.get("rts_received") >= 1

    def test_dropped_cts_is_retransmitted(self):
        am0, am1, inj = _run_store(_drop(PacketKind.CTS))
        assert len(inj.injected) == 1
        # the receiver saw no landings on the grant and resent its CTS
        assert am1.stats.get("cts_retransmits") >= 1
        assert am0.stats.get("cts_received") >= 1

    def test_dropped_fin_recovers_via_stall_nack(self):
        am0, am1, inj = _run_store(_drop(PacketKind.RDMA_FIN))
        assert len(inj.injected) == 1
        # tail loss leaves no sequence gap; only the per-source stream
        # watchdog can notice the silence and NACK the sender
        assert am1.stats.get("rdzv_stall_nacks_sent") >= 1
        assert am0.stats.get("retransmissions") >= 1

    def test_dropped_tail_data_recovers_via_stall_nack(self):
        # drop the last RDMA_DATA packet of the stream: like FIN loss,
        # nothing later arrives out of order, so only the watchdog helps
        nbytes = 3 * CHUNK_BYTES
        per_chunk = (CHUNK_BYTES + 223) // 224
        am0, am1, _inj = _run_store(
            _drop(PacketKind.RDMA_DATA, after=3 * per_chunk - 1),
            nbytes=nbytes)
        assert (am1.stats.get("rdzv_stall_nacks_sent")
                + am1.stats.get("rdma_out_of_order_dropped")) >= 1

    def test_dropped_mid_stream_data_recovers(self):
        am0, am1, _inj = _run_store(_drop(PacketKind.RDMA_DATA, after=2))
        # everything after the gap lands out of order and is discarded;
        # recovery is a go-back-N retransmission round
        assert am1.stats.get("rdma_out_of_order_dropped") >= 1
        assert am0.stats.get("retransmissions") >= 1

    def test_repeated_handshake_loss_still_converges(self):
        # drop the first three RTS *and* the first three CTS
        plan = FaultPlan(seed=2, rules=(
            FaultRule(kind="drop", rate=1.0, budget=3,
                      packet_kinds=frozenset({PacketKind.RTS})),
            FaultRule(kind="drop", rate=1.0, budget=3,
                      packet_kinds=frozenset({PacketKind.CTS})),))
        am0, am1, inj = _run_store(plan)
        assert len(inj.injected) == 6
        assert am0.stats.get("rts_retransmits") >= 3
