"""Adapter pipeline math: latency and occupancy against the parameters.

The calibration rests on this decomposition (docs/calibration.md); these
tests compute the expected timings from AdapterParams and assert the
simulated adapter lands on them exactly.
"""

import pytest

from repro.hardware import build_sp_machine
from repro.hardware.packet import Packet, PacketKind
from repro.hardware.params import machine_params
from repro.sim import Simulator


def one_way_time(wire_bytes: int) -> float:
    """Expected unloaded one-way latency per the stage model."""
    p = machine_params("sp-thin")
    a, s = p.adapter, p.switch
    dma = wire_bytes / a.mc_dma_rate
    wire = wire_bytes / s.link_rate
    return (a.length_scan + dma + a.i860_tx_latency + wire
            + s.latency + dma + a.i860_rx_latency)


class TestLatencyDecomposition:
    @pytest.mark.parametrize("args,payload", [
        ((), b""), ((1,), b""), ((1, 2, 3, 4), b""),
        ((), b"x" * 224),
    ])
    def test_single_packet_latency_matches_model(self, args, payload):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        pkt = Packet(src=0, dst=1, kind=PacketKind.RAW, args=args,
                     payload=payload)
        expected = one_way_time(pkt.wire_bytes)
        a = m.node(0).adapter
        a.host_stage(pkt)
        a.host_arm()
        t = sim.run()
        assert t == pytest.approx(expected, abs=1e-9)

    def test_occupancy_sets_the_asymptote(self):
        """Steady-state spacing = max(dma, i860 occ, wire + gap)."""
        p = machine_params("sp-thin")
        a, s = p.adapter, p.switch
        wire_bytes = 256
        expected_gap = max(wire_bytes / a.mc_dma_rate,
                           a.i860_tx_occupancy,
                           wire_bytes / s.link_rate + a.msmu_gap)
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        arrivals = []
        m.node(1).adapter.add_arrival_listener(
            lambda pkt: arrivals.append(sim.now))
        adapter = m.node(0).adapter
        for i in range(30):
            adapter.host_stage(Packet(src=0, dst=1,
                                      kind=PacketKind.STORE_DATA, seq=i,
                                      payload=b"d" * 224))
        adapter.host_arm()
        sim.run()
        gaps = [b - a_ for a_, b in zip(arrivals[5:], arrivals[6:])]
        for g in gaps:
            assert g == pytest.approx(expected_gap, abs=1e-9)
        # and the derived payload bandwidth is Table 3's 34.3 MB/s
        assert 224 / expected_gap == pytest.approx(34.3, abs=0.15)

    def test_latency_exceeds_occupancy(self):
        """The pipeline premise: per-packet latency >> per-packet spacing
        (a single service time could not satisfy both calibrations)."""
        assert one_way_time(256) > 3 * 6.53

    def test_wide_node_same_adapter_timing(self):
        """Thin and wide nodes share the TB2; only host costs differ."""
        for kind in ("sp-thin", "sp-wide"):
            sim = Simulator()
            m = build_sp_machine(sim, 2, machine_params(kind))
            a = m.node(0).adapter
            a.host_stage(Packet(src=0, dst=1, kind=PacketKind.RAW))
            a.host_arm()
            assert sim.run() == pytest.approx(one_way_time(32), abs=1e-9)
