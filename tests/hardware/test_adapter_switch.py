"""Integration tests: packets through TB2 adapters and the switch."""

import pytest

from repro.hardware import build_sp_machine
from repro.hardware.packet import Packet, PacketKind
from repro.hardware.params import machine_params, with_overrides
from repro.sim import Simulator


def small_packet(src=0, dst=1, seq=0):
    return Packet(src=src, dst=dst, kind=PacketKind.RAW, seq=seq, args=(seq,))


def full_packet(src=0, dst=1, seq=0):
    return Packet(
        src=src, dst=dst, kind=PacketKind.STORE_DATA, seq=seq, payload=b"d" * 224
    )


def send_n(machine, n, maker, src=0, dst=1):
    adapter = machine.node(src).adapter
    for i in range(n):
        adapter.host_stage(maker(src, dst, i))
    adapter.host_arm()


class TestDelivery:
    def test_single_packet_arrives_once(self):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        send_n(m, 1, small_packet)
        sim.run()
        rx = m.node(1).adapter
        assert rx.host_recv_available() == 1
        assert rx.host_recv_consume().args == (0,)

    def test_delivery_order_preserved(self):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        send_n(m, 10, small_packet)
        sim.run()
        rx = m.node(1).adapter
        seqs = [rx.host_recv_consume().seq for _ in range(10)]
        assert seqs == list(range(10))

    def test_one_way_latency_in_paper_range(self):
        # small-packet hardware latency must land near 14-17 us so the raw
        # RTT (hardware + minimal software) can hit the paper's 47 us
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        send_n(m, 1, small_packet)
        t = sim.run()
        assert 12.0 < t < 18.0

    def test_full_packets_pace_at_wire_rate(self):
        # steady-state inter-departure must be 256B / 40MB/s + gap = 6.53us
        # -> payload bandwidth 224/6.53 = 34.3 MB/s (Table 3)
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        n = 64
        arrivals = []
        m.node(1).adapter.add_arrival_listener(lambda p: arrivals.append(sim.now))
        send_n(m, n, full_packet)
        sim.run()
        gaps = [b - a for a, b in zip(arrivals[10:], arrivals[11:])]
        for g in gaps:
            assert g == pytest.approx(6.53, abs=0.05)
        bw = 224 / gaps[0]
        assert bw == pytest.approx(34.3, abs=0.3)

    def test_unattached_destination_raises(self):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        a = m.node(0).adapter
        a.host_stage(Packet(src=0, dst=7, kind=PacketKind.RAW))
        a.host_arm()
        with pytest.raises(KeyError):
            sim.run()


class TestOverflowAndFaults:
    def test_recv_fifo_overflow_drops(self):
        # receiver never consumes; its FIFO holds 64*2 slots on a 2-node
        # machine, so a burst of 160 packets must lose some
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        a = m.node(0).adapter
        for i in range(128):
            a.host_stage(small_packet(seq=i))
        a.host_arm()
        # refill the send FIFO after it drains
        def refill():
            for i in range(128, 160):
                a.host_stage(small_packet(seq=i))
            a.host_arm()
        sim.schedule(2000.0, refill)
        sim.run()
        rx = m.node(1).adapter
        dropped = rx.stats.get("rx_dropped_overflow")
        assert dropped == 160 - 128
        assert rx.host_recv_available() == 128

    def test_fault_injector_drops_selected_packets(self):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        m.switch.fault_injector = lambda p: p.seq % 3 == 0
        send_n(m, 9, small_packet)
        sim.run()
        rx = m.node(1).adapter
        got = [rx.host_recv_consume().seq for _ in range(rx.host_recv_available())]
        assert got == [1, 2, 4, 5, 7, 8]
        assert m.switch.stats.get("packets_dropped_fault") == 3

    def test_dest_link_contention_serializes(self):
        # two senders blasting one receiver: arrival rate is capped by the
        # destination link, so total time ~ 2x the single-sender case
        def run(nsenders):
            sim = Simulator()
            m = build_sp_machine(sim, 3)
            last = [0.0]
            m.node(2).adapter.add_arrival_listener(
                lambda p: last.__setitem__(0, sim.now)
            )
            for s in range(nsenders):
                a = m.node(s).adapter
                for i in range(40):
                    a.host_stage(full_packet(src=s, dst=2, seq=i))
                a.host_arm()
            sim.run()
            assert m.node(2).adapter.stats.get("rx_dropped_overflow") == 0
            return last[0]

        t1, t2 = run(1), run(2)
        assert t2 > 1.8 * t1


class TestSendFifoBackpressure:
    def test_host_can_stage_reflects_fifo_occupancy(self):
        sim = Simulator()
        p = machine_params("sp-thin")
        m = build_sp_machine(sim, 2, with_overrides(p, send_fifo_entries=4))
        a = m.node(0).adapter
        assert a.host_can_stage(4)
        for i in range(4):
            a.host_stage(small_packet(seq=i))
        assert not a.host_can_stage(1)
        a.host_arm()
        sim.run()
        assert a.host_can_stage(4)


class TestArrivalNotification:
    def test_arrival_event_fires_at_visibility_time(self):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        ev = m.node(1).adapter.arrival_event()
        send_n(m, 1, small_packet)
        sim.run()
        assert ev.triggered
        assert ev.value.kind == PacketKind.RAW

    def test_arrival_event_renews_after_trigger(self):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        a1 = m.node(1).adapter
        ev1 = a1.arrival_event()
        send_n(m, 1, small_packet)
        sim.run()
        ev2 = a1.arrival_event()
        assert ev2 is not ev1
        assert not ev2.triggered
