"""Unit tests for send/receive FIFO bookkeeping."""

import pytest

from repro.hardware.fifo import RecvFIFO, SendFIFO
from repro.hardware.packet import Packet, PacketKind


def pkt(i=0):
    return Packet(src=0, dst=1, kind=PacketKind.REQUEST, seq=i)


class TestSendFIFO:
    def test_stage_then_arm_then_take(self):
        f = SendFIFO(8)
        f.stage(pkt(1))
        f.stage(pkt(2))
        assert f.armed_count == 0
        assert f.take_armed() is None
        assert f.arm() == 2
        assert f.take_armed().seq == 1
        assert f.take_armed().seq == 2
        assert f.take_armed() is None

    def test_partial_arm(self):
        f = SendFIFO(8)
        for i in range(5):
            f.stage(pkt(i))
        assert f.arm(2) == 2
        assert f.armed_count == 2
        assert f.staged_count == 3

    def test_arm_more_than_staged_clamps(self):
        f = SendFIFO(8)
        f.stage(pkt())
        assert f.arm(10) == 1

    def test_arm_negative_count_rejected(self):
        f = SendFIFO(8)
        f.stage(pkt())
        with pytest.raises(ValueError, match="negative packet count"):
            f.arm(-1)
        assert f.staged_count == 1  # nothing was consumed

    def test_capacity_enforced(self):
        f = SendFIFO(2)
        f.stage(pkt())
        f.stage(pkt())
        assert f.free_entries == 0
        with pytest.raises(OverflowError):
            f.stage(pkt())

    def test_taking_frees_entries(self):
        f = SendFIFO(2)
        f.stage(pkt())
        f.arm()
        f.take_armed()
        assert f.free_entries == 2

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            SendFIFO(0)


class TestRecvFIFO:
    def test_reserve_until_full(self):
        f = RecvFIFO(capacity=3)
        assert all(f.reserve() for _ in range(3))
        assert not f.reserve()  # overflow -> caller drops the packet

    def test_deliver_consume_order(self):
        f = RecvFIFO(capacity=8)
        for i in range(3):
            f.reserve()
            f.deliver(pkt(i))
        assert f.peek().seq == 0
        assert [f.consume().seq for _ in range(3)] == [0, 1, 2]
        with pytest.raises(IndexError):
            f.consume()

    def test_lazy_pop_frees_capacity_in_batches(self):
        f = RecvFIFO(capacity=4, lazy_pop_batch=3)
        for i in range(4):
            f.reserve()
            f.deliver(pkt(i))
        assert not f.reserve()
        f.consume()
        # consumed but not popped: capacity still held
        assert not f.should_pop()
        assert not f.reserve()
        f.consume()
        f.consume()
        assert f.should_pop()
        assert f.pop_batch() == 3
        assert f.reserve()

    def test_pop_batch_returns_zero_when_nothing_pending(self):
        f = RecvFIFO(capacity=4)
        assert f.pop_batch() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RecvFIFO(capacity=0)
        with pytest.raises(ValueError):
            RecvFIFO(capacity=4, lazy_pop_batch=0)
