"""Property tests for the segmented node memory."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.node import Memory


@st.composite
def alloc_script(draw):
    return draw(st.lists(
        st.integers(min_value=0, max_value=3_000_000),
        min_size=1, max_size=20))


class TestMemoryProperties:
    @given(sizes=alloc_script())
    @settings(max_examples=60)
    def test_allocations_disjoint_and_readable(self, sizes):
        mem = Memory()
        regions = []
        for i, size in enumerate(sizes):
            addr = mem.alloc(size)
            if size:
                pattern = bytes([(i * 17 + 1) % 256]) * size
                mem.write(addr, pattern)
            regions.append((addr, size, i))
        # every region reads back its own pattern (no aliasing even
        # across segment boundaries)
        for addr, size, i in regions:
            if size:
                assert mem.read(addr, size) == \
                    bytes([(i * 17 + 1) % 256]) * size

    @given(sizes=st.lists(st.integers(1, 5000), min_size=2, max_size=10))
    @settings(max_examples=40)
    def test_views_alias_their_region_only(self, sizes):
        mem = Memory()
        addrs = [mem.alloc(s) for s in sizes]
        views = [mem.view(a, s) for a, s in zip(addrs, sizes)]
        for i, v in enumerate(views):
            v[:] = bytes([i + 1]) * sizes[i]
        for i, (a, s) in enumerate(zip(addrs, sizes)):
            assert mem.read(a, s) == bytes([i + 1]) * s

    @given(big=st.integers(1_048_577, 8_000_000))
    @settings(max_examples=10)
    def test_oversized_allocations_get_own_segment(self, big):
        mem = Memory()
        small = mem.alloc(64)
        huge = mem.alloc(big)
        mem.write(huge + big - 4, b"tail")
        mem.write(small, b"head")
        assert mem.read(huge + big - 4, 4) == b"tail"
        assert mem.read(small, 4) == b"head"

    def test_numpy_views_survive_later_allocations(self):
        """The reason Memory is segmented: growing must never invalidate
        exported numpy views (bytearray resize would raise BufferError)."""
        import numpy as np

        mem = Memory(initial=1024)
        addr, arr = mem.alloc_array(128, np.int64)
        arr[:] = np.arange(128)
        # force several new segments
        for _ in range(4):
            mem.alloc(2_000_000)
        arr[0] = 42  # the old view must still alias live memory
        assert np.frombuffer(mem.read(addr, 8), np.int64)[0] == 42
        assert (np.frombuffer(mem.read(addr, 1024), np.int64)[1:]
                == np.arange(1, 128)).all()
