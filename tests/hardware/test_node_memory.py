"""Tests for Node memory, CPU charging, cache model, and machine builders."""

import numpy as np
import pytest

from repro.hardware import Machine, build_generic_machine, build_sp_machine
from repro.hardware.cache import copy_cost, flush_cost, lines_covering
from repro.hardware.machine import build_machine
from repro.hardware.node import Memory
from repro.hardware.params import HostParams, machine_params
from repro.sim import Simulator


class TestMemory:
    def test_alloc_returns_distinct_aligned_regions(self):
        mem = Memory()
        a = mem.alloc(100)
        b = mem.alloc(100)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 100

    def test_write_read_roundtrip(self):
        mem = Memory()
        addr = mem.alloc(256)
        mem.write(addr, b"hello world")
        assert mem.read(addr, 11) == b"hello world"

    def test_growth_beyond_initial_size(self):
        mem = Memory(initial=128)
        addr = mem.alloc(1 << 20)
        mem.write(addr + (1 << 20) - 4, b"tail")
        assert mem.read(addr + (1 << 20) - 4, 4) == b"tail"

    def test_read_past_end_raises(self):
        mem = Memory(initial=64)
        with pytest.raises(IndexError):
            mem.read(1 << 30, 10)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            Memory().alloc(-1)

    def test_alloc_array_aliases_memory(self):
        mem = Memory()
        addr, arr = mem.alloc_array(16, np.int32)
        arr[:] = np.arange(16)
        raw = np.frombuffer(mem.read(addr, 64), dtype=np.int32)
        assert (raw == np.arange(16)).all()

    def test_view_is_writable(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.view(addr, 8)[:] = b"ABCDEFGH"
        assert mem.read(addr, 8) == b"ABCDEFGH"


class TestCacheModel:
    def test_lines_covering(self):
        assert lines_covering(0, 64) == 0
        assert lines_covering(1, 64) == 1
        assert lines_covering(64, 64) == 1
        assert lines_covering(65, 64) == 2
        assert lines_covering(256, 64) == 4

    def test_flush_cost_thin_vs_wide(self):
        thin = HostParams(kind="thin", cache_line=64, flush_line=0.18)
        wide = HostParams(kind="wide", cache_line=256, flush_line=0.42)
        # one full packet = 4 thin lines but a single wide line
        assert flush_cost(256, thin) == pytest.approx(4 * 0.18)
        assert flush_cost(256, wide) == pytest.approx(0.42)

    def test_copy_cost_scales_with_bytes(self):
        host = HostParams()
        assert copy_cost(0, host) == 0.0
        assert copy_cost(9000, host) > copy_cost(900, host)


class TestCpuCharging:
    def test_compute_advances_clock_and_busy_counter(self):
        sim = Simulator()
        m = build_sp_machine(sim, 1)
        node = m.node(0)

        def prog():
            yield from node.compute(5.0)
            yield from node.charge_flops(400)  # 400 flops at 40 Mflops = 10us
            yield from node.charge_intops(500)  # at 50 Mops = 10us

        p = sim.spawn(prog())
        sim.run()
        assert p.finished
        assert sim.now == pytest.approx(25.0)
        assert node.cpu_busy_us == pytest.approx(25.0)


class TestBuilders:
    def test_sp_machine_shape(self):
        sim = Simulator()
        m = build_sp_machine(sim, 4)
        assert m.nprocs == 4
        assert m.is_sp
        assert m.switch.node_count == 4
        assert all(n.adapter is not None for n in m.nodes)

    def test_recv_fifo_scales_with_active_nodes(self):
        # "64 entries per active processing node (determined at runtime)"
        sim = Simulator()
        m = build_sp_machine(sim, 4)
        assert m.node(0).adapter.recv_fifo.capacity == 64 * 4

    def test_generic_machine_shape(self):
        sim = Simulator()
        m = build_generic_machine(sim, 8, machine_params("cm5"))
        assert m.nprocs == 8
        assert not m.is_sp
        assert all(n.nic is not None for n in m.nodes)

    def test_build_machine_by_name(self):
        sim = Simulator()
        for name in ("sp-thin", "sp-wide", "cm5", "meiko", "unet"):
            m = build_machine(Simulator(), 2, name)
            assert isinstance(m, Machine)

    def test_wrong_kind_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_sp_machine(sim, 2, machine_params("cm5"))
        with pytest.raises(ValueError):
            build_generic_machine(sim, 2, machine_params("sp-thin"))

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            build_sp_machine(Simulator(), 0)

    def test_unknown_machine_name(self):
        with pytest.raises(KeyError):
            machine_params("cray-t3d")


class TestGenericNIC:
    def test_latency_matches_logp_parameters(self):
        from repro.hardware.packet import Packet, PacketKind

        sim = Simulator()
        m = build_generic_machine(sim, 2, machine_params("cm5"))
        nic = m.node(0).nic
        # small control message: LogP charges only L (overheads are the
        # software layer's o_send/o_recv)
        pkt = Packet(src=0, dst=1, kind=PacketKind.REQUEST, args=(1,))
        nic.host_send(pkt)
        t = sim.run()
        assert t == pytest.approx(2.3, abs=0.01)
        assert m.node(1).nic.host_recv_available() == 1
        # bulk payload serializes at the link rate on top of L
        sim2 = Simulator()
        m2 = build_generic_machine(sim2, 2, machine_params("cm5"))
        m2.node(0).nic.host_send(
            Packet(src=0, dst=1, kind=PacketKind.STORE_DATA, payload=b"x" * 200)
        )
        assert sim2.run() == pytest.approx(200 / 10.0 + 2.3, abs=0.01)

    def test_ordered_reliable_delivery(self):
        from repro.hardware.packet import Packet, PacketKind

        sim = Simulator()
        m = build_generic_machine(sim, 2, machine_params("meiko"))
        for i in range(20):
            m.node(0).nic.host_send(
                Packet(src=0, dst=1, kind=PacketKind.REQUEST, seq=i)
            )
        sim.run()
        rx = m.node(1).nic
        assert [rx.host_recv_consume().seq for _ in range(20)] == list(range(20))
