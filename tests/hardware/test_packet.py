"""Packet geometry tests (§2.2 constants)."""

import pytest

from repro.hardware.packet import Packet, PacketKind
from repro.hardware.params import (
    CHUNK_BYTES,
    CHUNK_PACKETS,
    PACKET_HEADER_BYTES,
    PACKET_PAYLOAD_BYTES,
    PACKET_SLOT_BYTES,
)


def test_paper_geometry():
    # "A packet has 224 bytes of data and 32 bytes of header. A chunk
    # corresponds to 36 packets." (§2.2 footnote)
    assert PACKET_HEADER_BYTES == 32
    assert PACKET_PAYLOAD_BYTES == 224
    assert PACKET_SLOT_BYTES == 256
    assert CHUNK_PACKETS == 36
    assert CHUNK_BYTES == 8064  # stated literally in the paper


def test_wire_bytes_header_only():
    p = Packet(src=0, dst=1, kind=PacketKind.ACK)
    assert p.wire_bytes == PACKET_HEADER_BYTES


def test_wire_bytes_counts_args_and_payload():
    p = Packet(src=0, dst=1, kind=PacketKind.REQUEST, args=(1, 2, 3))
    assert p.wire_bytes == PACKET_HEADER_BYTES + 12
    q = Packet(src=0, dst=1, kind=PacketKind.STORE_DATA, payload=b"x" * 100)
    assert q.wire_bytes == PACKET_HEADER_BYTES + 100


def test_payload_limit_enforced():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, kind=PacketKind.STORE_DATA,
               payload=b"x" * (PACKET_PAYLOAD_BYTES + 1))


def test_max_four_word_args():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, kind=PacketKind.REQUEST, args=(1, 2, 3, 4, 5))


def test_sequenced_kinds():
    assert Packet(src=0, dst=1, kind=PacketKind.REQUEST).is_sequenced
    assert Packet(src=0, dst=1, kind=PacketKind.STORE_DATA).is_sequenced
    assert not Packet(src=0, dst=1, kind=PacketKind.ACK).is_sequenced
    assert not Packet(src=0, dst=1, kind=PacketKind.RAW).is_sequenced


def test_checksum_covers_payload_and_header_fields():
    p = Packet(src=0, dst=1, kind=PacketKind.STORE_DATA, seq=5,
               payload=b"abc", offset=224, ack_req=3)
    p.checksum = p.compute_checksum()
    assert p.checksum_ok()
    for mutate in (lambda q: setattr(q, "payload", b"abd"),
                   lambda q: setattr(q, "seq", 6),
                   lambda q: setattr(q, "offset", 0),
                   lambda q: setattr(q, "ack_req", 4),
                   lambda q: setattr(q, "handler", 9)):
        q = p.clone()
        mutate(q)
        assert not q.checksum_ok(), "mutation went undetected"


def test_unstamped_checksum_always_passes():
    p = Packet(src=0, dst=1, kind=PacketKind.REQUEST)
    assert p.checksum == -1 and p.checksum_ok()


def test_clone_is_deep_enough_and_keeps_trace_id():
    p = Packet(src=0, dst=1, kind=PacketKind.STORE_DATA, seq=7,
               payload=b"data", args=(1, 2))
    p.trace_id = 99
    q = p.clone()
    assert q is not p and q == p
    assert q.trace_id == 99
    q.ack_req = 42
    q.seq = 8
    assert p.ack_req == -1 and p.seq == 7  # original unaffected
