"""Regression: a fabric-duplicated packet must occupy the destination link.

The duplicate-fault path used to schedule the stray copy's delivery
without charging its wire time to ``_dest_link_free`` — the link briefly
carried two packets at once, and packets behind the duplicate arrived
one serialization too early.
"""

from types import SimpleNamespace

import pytest

from repro.hardware.packet import Packet, PacketKind
from repro.hardware.params import machine_params
from repro.hardware.switch import Switch
from repro.sim import Simulator


class _RecordingAdapter:
    """Stands in for a TB2Adapter on the receive side."""

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def on_wire_arrival(self, packet):
        self.arrivals.append((self.sim.now, packet))


class _DuplicateOnce:
    """Duck-typed FaultInjector: duplicate the first packet seen."""

    def __init__(self, delay_us=0.0):
        self.delay_us = delay_us
        self.done = False

    def at_switch(self, packet, now):
        if self.done:
            return None
        self.done = True
        return SimpleNamespace(kind="duplicate", packet=packet.clone(),
                               delay_us=self.delay_us)

    def at_rx(self, packet, now):  # pragma: no cover - not exercised
        return False


def _full_packet(seq=0):
    return Packet(src=0, dst=1, kind=PacketKind.STORE_DATA, seq=seq,
                  payload=b"d" * 224)


def _setup(faults=None):
    sim = Simulator()
    params = machine_params("sp-thin").switch
    sw = Switch(sim, params)
    rx = _RecordingAdapter(sim)
    sw.attach(0, _RecordingAdapter(sim))
    sw.attach(1, rx)
    sw.faults = faults
    return sim, sw, rx, params


def test_duplicate_charges_dest_link_wire_time():
    sim, sw, rx, params = _setup(_DuplicateOnce())
    wire_time = _full_packet().wire_bytes / params.link_rate

    sw.inject(_full_packet(seq=0), wire_exit_time=0.0)
    # original serializes at [0, wire); the stray copy must hold the link
    # for its own wire time right behind it
    assert sw._dest_link_free[1] == pytest.approx(2 * wire_time)
    assert sw.stats.get("dup_link_charged") == 1

    # a packet converging right behind the pair queues behind BOTH copies;
    # the count is 2 — the duplicate itself queued behind the original
    # (delay 0, link busy), and the follower queued behind the duplicate
    sw.inject(_full_packet(seq=1), wire_exit_time=0.0)
    assert sw._dest_link_free[1] == pytest.approx(3 * wire_time)
    assert sw.stats.get("dest_link_queued") == 2

    sim.run()
    times = sorted(t for t, _ in rx.arrivals)
    assert len(times) == 3  # original + duplicate + follower
    # follower delivered only after the duplicate's serialization slot
    assert times[2] == pytest.approx(2 * wire_time + params.latency)


def test_duplicate_with_delay_starts_no_earlier_than_its_hold():
    sim, sw, rx, params = _setup(_DuplicateOnce(delay_us=50.0))
    wire_time = _full_packet().wire_bytes / params.link_rate

    sw.inject(_full_packet(seq=0), wire_exit_time=0.0)
    # the stray copy trails by the rule's delay, then serializes
    assert sw._dest_link_free[1] == pytest.approx(50.0 + wire_time)
    sim.run()
    times = sorted(t for t, _ in rx.arrivals)
    assert times[1] == pytest.approx(50.0 + params.latency)


def test_no_fault_leaves_link_accounting_unchanged():
    sim, sw, rx, params = _setup(faults=None)
    wire_time = _full_packet().wire_bytes / params.link_rate
    sw.inject(_full_packet(seq=0), wire_exit_time=0.0)
    assert sw._dest_link_free[1] == pytest.approx(wire_time)
    assert sw.stats.get("dup_link_charged") == 0


class _ObsStub:
    """Minimal observability hub: just enough surface for Switch.inject."""

    def __init__(self):
        self.spans = {}
        self._hist = SimpleNamespace(observe=lambda v: None)

    def hist(self, name):
        return self._hist

    def packet_dropped(self, packet, reason):  # pragma: no cover
        pass


def test_duplicate_wire_time_counted_in_link_busy():
    """Regression: the stray copy holds the destination link, so its wire
    time must show up in the per-link utilization gauge's source counter
    (``link_busy_us``) — previously only ``_dest_link_free`` was charged
    and utilization undercounted under duplicate faults."""
    sim, sw, rx, params = _setup(_DuplicateOnce())
    sw.obs = _ObsStub()
    wire_time = _full_packet().wire_bytes / params.link_rate

    sw.inject(_full_packet(seq=0), wire_exit_time=0.0)
    # original + duplicate each serialize once on link 1
    assert sw.link_busy_us[1] == pytest.approx(2 * wire_time)

    sim.run()
    assert len(rx.arrivals) == 2


def test_duplicate_link_busy_untraced_stays_zero():
    sim, sw, rx, params = _setup(_DuplicateOnce())
    sw.inject(_full_packet(seq=0), wire_exit_time=0.0)
    # without an Observatory the gauge source is never touched (hot path)
    assert sw.link_busy_us[1] == 0.0


class _ReorderAndDuplicate:
    """Duck-typed injector combining two rules on the first packet —
    exercises the list-of-actions form of ``at_switch``."""

    def __init__(self, hold_us):
        self.hold_us = hold_us
        self.done = False

    def at_switch(self, packet, now):
        if self.done:
            return None
        self.done = True
        return [
            SimpleNamespace(kind="reorder", delay_us=self.hold_us),
            SimpleNamespace(kind="duplicate", packet=packet.clone(),
                            delay_us=0.0),
        ]

    def at_rx(self, packet, now):  # pragma: no cover - not exercised
        return False


def test_duplicate_does_not_inherit_reorder_hold():
    """Regression: a reorder rule targets the *original* packet; the
    fabric's stray copy must be delivered without the hold (it used to
    inherit it and arrive ``reorder_hold`` late)."""
    hold = 40.0
    sim, sw, rx, params = _setup(_ReorderAndDuplicate(hold_us=hold))
    wire_time = _full_packet().wire_bytes / params.link_rate

    sw.inject(_full_packet(seq=0), wire_exit_time=0.0)
    # dup (delay 0) queues behind the original's serialization slot
    assert sw.stats.get("dest_link_queued") == 1
    assert sw.stats.get("packets_reordered_fault") == 1
    assert sw.stats.get("packets_duplicated_fault") == 1

    sim.run()
    times = sorted(t for t, _ in rx.arrivals)
    assert len(times) == 2
    # the un-held duplicate overtakes the held original
    assert times[0] == pytest.approx(wire_time + params.latency)
    assert times[1] == pytest.approx(params.latency + hold)
