"""Chaos soak: the full AM + Split-C workload under sustained faults.

Each case runs :func:`repro.faults.run_soak` — ping-pong, multi-chunk
bulk transfer, and a Split-C phase — under an injection plan, and asserts
the reliability layer's whole contract at once: exactly-once in-order
delivery, intact memory contents, no window-invariant violations, a
bounded recovery time versus the fault-free run, and one observability
fault event per injection (reconciled by trace_id).
"""

import pytest

from repro.faults import FaultPlan, FaultRule, run_soak
from repro.hardware.packet import PacketKind


@pytest.mark.parametrize("loss", [0.001, 0.02, 0.1])
def test_soak_survives_uniform_loss(loss):
    result = run_soak(seed=7, loss=loss)
    assert result.violations == []
    if loss >= 0.02:
        assert result.total_injected > 0
        assert result.counters.get("retransmissions", 0) > 0


def test_soak_survives_chaos_mix():
    result = run_soak(seed=11, loss=0.05, chaos=True)
    assert result.violations == []
    # the mix actually exercised several fault kinds
    assert len(result.injected_counts) >= 3


def test_soak_is_deterministic():
    a = run_soak(seed=13, loss=0.05, compare_clean=False)
    b = run_soak(seed=13, loss=0.05, compare_clean=False)
    assert a.elapsed_us == b.elapsed_us
    assert a.injected == b.injected
    assert a.counters == b.counters


def test_soak_bounds_recovery_time():
    result = run_soak(seed=7, loss=0.05)
    assert result.clean_elapsed_us is not None
    assert result.elapsed_us <= result.recovery_bound_us
    # faults genuinely cost time (sanity that the clean run is clean)
    assert result.counters.get("retransmissions", 0) > 0


def test_soak_reconciles_every_fault_with_obs():
    result = run_soak(seed=7, loss=0.05, compare_clean=False)
    assert result.violations == []
    events = result.obs.fault_events
    for f in result.injected:
        assert f.trace_id > 0
        assert any(ev["kind"] == f.kind and ev["trace_id"] == f.trace_id
                   for ev in events)


def test_soak_four_nodes():
    result = run_soak(seed=9, loss=0.02, nodes=4, pingpong=12,
                      bulk_bytes=9000, compare_clean=False)
    assert result.violations == []


def test_soak_custom_plan_targeted_at_bulk_data():
    plan = FaultPlan(seed=21, rules=(
        FaultRule(kind="drop", rate=0.08,
                  packet_kinds=frozenset({PacketKind.STORE_DATA,
                                          PacketKind.GET_DATA})),
        FaultRule(kind="duplicate", rate=0.05,
                  packet_kinds=frozenset({PacketKind.NACK,
                                          PacketKind.ACK})),
    ))
    result = run_soak(seed=21, plan=plan, compare_clean=False)
    assert result.violations == []
    assert result.injected_counts.get("drop", 0) > 0
