"""Cross-layer integration: determinism, loss under MPI, mixed traffic.

These tests exercise the entire stack — hardware model, AM flow control,
MPI protocols, applications — under the conditions unit tests avoid:
repeated runs must be bit-identical, packet loss must be invisible above
the AM layer, and concurrent protocol traffic must not interfere.
"""

import pytest

from repro.am import attach_spam
from repro.apps.nas import run_bt, run_mg
from repro.apps.sample_sort import run_sample_sort
from repro.hardware import build_sp_machine
from repro.hardware.packet import PacketKind
from repro.mpi import OPTIMIZED, attach_mpi
from repro.sim import Simulator


class TestDeterminism:
    """Identical runs produce identical simulated timelines — the property
    the whole calibration methodology rests on."""

    def test_nas_kernel_deterministic(self):
        a = run_bt("mpi-am", nprocs=4, grid_n=8, iters=2)
        b = run_bt("mpi-am", nprocs=4, grid_n=8, iters=2)
        assert a.elapsed_s == b.elapsed_s

    def test_splitc_app_deterministic(self):
        a = run_sample_sort("sp-am", nprocs=4, keys_per_proc=256,
                            variant="small")
        b = run_sample_sort("sp-am", nprocs=4, keys_per_proc=256,
                            variant="small")
        assert a.elapsed_us == b.elapsed_us
        assert a.splits == b.splits

    def test_flow_control_recovery_deterministic(self):
        def run():
            sim = Simulator()
            m = build_sp_machine(sim, 2)
            count = [0]
            m.switch.fault_injector = (
                lambda p: (count.__setitem__(0, count[0] + 1)
                           or count[0] % 11 == 0))
            am0, am1 = attach_spam(m)
            n = 30_000
            src = m.node(0).memory.alloc(n)
            dst = m.node(1).memory.alloc(n)
            flag = [0]

            def sender():
                yield from am0.store(1, src, dst, n)
                flag[0] = 1

            def receiver():
                while not flag[0]:
                    yield from am1._wait_progress()

            p = sim.spawn(sender())
            q = sim.spawn(receiver())
            sim.run_until_processes_done([p, q], limit=1e9)
            return sim.now, am0.stats.snapshot()

        assert run() == run()


class TestLossUnderMPI:
    """Packet loss is an AM-layer concern; MPI and the applications above
    must see only (slower) success."""

    def _lossy_machine(self, nprocs, period):
        sim = Simulator()
        m = build_sp_machine(sim, nprocs)
        counter = [0]

        def drop_some(pkt):
            if pkt.kind in (PacketKind.STORE_DATA, PacketKind.REQUEST,
                            PacketKind.REPLY):
                counter[0] += 1
                return counter[0] % period == 0
            return False

        m.switch.fault_injector = drop_some
        attach_spam(m)
        return m, attach_mpi(m, OPTIMIZED), counter

    @pytest.mark.parametrize("period", [23, 61])
    def test_mpi_p2p_survives_loss(self, period):
        m, mpis, counter = self._lossy_machine(2, period)
        payloads = [bytes([i]) * (100 + 137 * i) for i in range(12)]
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    for i, p in enumerate(payloads):
                        yield from mpis[0].send(p, 1, tag=i)
                else:
                    for i, p in enumerate(payloads):
                        d, _ = yield from mpis[1].recv(len(p), 0, tag=i)
                        out.append(d)
            return go()

        procs = [m.sim.spawn(prog(r)) for r in range(2)]
        m.sim.run_until_processes_done(procs, limit=1e9,
                                       max_events=50_000_000)
        assert out == payloads
        # with the denser drop pattern, the AM layer must actually have
        # recovered something (sparser patterns may see zero drops)
        if period < 30:
            assert m.node(0).am.stats.get("retransmissions") > 0 or \
                m.node(1).am.stats.get("retransmissions") > 0

    def test_mpi_collectives_survive_loss(self):
        import numpy as np

        m, mpis, _ = self._lossy_machine(4, 31)
        out = {}

        def prog(rank):
            def go():
                res = yield from mpis[rank].allreduce(
                    np.array([rank + 1.0]), "sum")
                yield from mpis[rank].barrier()
                out[rank] = res[0]
            return go()

        procs = [m.sim.spawn(prog(r)) for r in range(4)]
        m.sim.run_until_processes_done(procs, limit=1e9,
                                       max_events=50_000_000)
        assert all(v == 10.0 for v in out.values())

    def test_loss_costs_time_but_not_correctness(self):
        """The same transfer, lossless vs lossy: identical data, strictly
        more simulated time under loss."""
        def run(period):
            sim = Simulator()
            m = build_sp_machine(sim, 2)
            if period:
                cnt = [0]
                m.switch.fault_injector = (
                    lambda p: p.kind == PacketKind.STORE_DATA
                    and (cnt.__setitem__(0, cnt[0] + 1) or cnt[0] % period == 0))
            am0, am1 = attach_spam(m)
            n = 40_000
            data = bytes(i % 251 for i in range(n))
            src = m.node(0).memory.alloc(n)
            dst = m.node(1).memory.alloc(n)
            m.node(0).memory.write(src, data)
            flag = [0]

            def sender():
                yield from am0.store(1, src, dst, n)
                flag[0] = 1

            def receiver():
                while not flag[0]:
                    yield from am1._wait_progress()

            p = sim.spawn(sender())
            q = sim.spawn(receiver())
            sim.run_until_processes_done([p, q], limit=1e9)
            return sim.now, m.node(1).memory.read(dst, n) == data

        t_clean, ok_clean = run(None)
        t_lossy, ok_lossy = run(17)
        assert ok_clean and ok_lossy
        assert t_lossy > t_clean


class TestMixedTraffic:
    def test_requests_stores_gets_interleave_across_nodes(self):
        """Four nodes running different protocol traffic simultaneously:
        per-peer per-channel windows must keep streams independent."""
        sim = Simulator()
        m = build_sp_machine(sim, 4)
        ams = attach_spam(m)
        n = 6000
        score = {"requests": 0, "stores": 0, "gets": 0}
        bufs = {r: (m.node(r).memory.alloc(n), m.node(r).memory.alloc(n))
                for r in range(4)}
        for r in range(4):
            m.node(r).memory.write(bufs[r][0], bytes([r + 1]) * n)

        def handler(token, i):
            score["requests"] += 1

        done = [0]

        def prog(rank):
            am = ams[rank]
            peer = (rank + 1) % 4
            for i in range(10):
                yield from am.request_1(peer, handler, i)
            yield from am.store(peer, bufs[rank][0], bufs[peer][1], n)
            score["stores"] += 1
            back = m.node(rank).memory.alloc(n)
            yield from am.get((rank + 2) % 4, bufs[(rank + 2) % 4][0],
                              back, n)
            assert m.node(rank).memory.read(back, n) == \
                bytes([(rank + 2) % 4 + 1]) * n
            score["gets"] += 1
            done[0] += 1
            while done[0] < 4:
                yield from am._wait_progress()

        procs = [sim.spawn(prog(r), name=f"mix{r}") for r in range(4)]
        sim.run_until_processes_done(procs, limit=1e9,
                                     max_events=50_000_000)
        assert score == {"requests": 40, "stores": 4, "gets": 4}
        for r in range(4):
            src_rank = (r - 1) % 4
            assert m.node(r).memory.read(bufs[r][1], n) == \
                bytes([src_rank + 1]) * n
