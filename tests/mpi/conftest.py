"""Fixtures for MPI tests: machines with MPI-AM or MPI-F installed."""

import pytest

from repro.am import attach_spam
from repro.hardware import build_sp_machine
from repro.hardware.params import machine_params
from repro.mpi import OPTIMIZED, UNOPTIMIZED, attach_mpi, attach_mpif
from repro.sim import Simulator


def make_mpi(nprocs=2, config=None, kind="sp-thin"):
    sim = Simulator()
    m = build_sp_machine(sim, nprocs, machine_params(kind))
    attach_spam(m)
    mpis = attach_mpi(m, config)
    return m, mpis


def make_mpif(nprocs=2, kind="sp-thin", eager_max=None):
    sim = Simulator()
    m = build_sp_machine(sim, nprocs, machine_params(kind))
    mpis = attach_mpif(m, eager_max)
    return m, mpis


def run_ranks(machine, make_prog, limit=1e9):
    sim = machine.sim
    procs = [sim.spawn(make_prog(r), name=f"mpi{r}")
             for r in range(machine.nprocs)]
    sim.run_until_processes_done(procs, limit=limit,
                                 max_events=50_000_000)
    return procs


@pytest.fixture(params=["opt", "unopt", "mpif"])
def any_mpi4(request):
    """4-rank MPI world over each implementation variant."""
    if request.param == "mpif":
        return make_mpif(4)
    cfg = OPTIMIZED if request.param == "opt" else UNOPTIMIZED
    return make_mpi(4, cfg)
