"""Receive-region allocators: unit + property tests (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.allocator import BinnedAllocator, FirstFitAllocator
from repro.mpi.protocol import pack_free, pack_rts_len, unpack_free, unpack_rts_len


class TestFirstFit:
    def test_allocates_from_front(self):
        a = FirstFitAllocator(1024)
        assert a.alloc(100) == 0
        assert a.alloc(100) == 100

    def test_exhaustion_returns_none(self):
        a = FirstFitAllocator(256)
        assert a.alloc(256) == 0
        assert a.alloc(1) is None

    def test_free_enables_reuse(self):
        a = FirstFitAllocator(256)
        off = a.alloc(256)
        a.free(off, 256)
        assert a.alloc(256) == 0

    def test_coalescing(self):
        a = FirstFitAllocator(300)
        x = a.alloc(100)
        y = a.alloc(100)
        z = a.alloc(100)
        a.free(x, 100)
        a.free(z, 100)
        a.free(y, 100)  # middle free must merge all three
        assert a.walk_length == 1
        assert a.alloc(300) == 0

    def test_first_fit_skips_small_holes(self):
        a = FirstFitAllocator(300)
        x = a.alloc(50)
        a.alloc(50)
        a.free(x, 50)
        assert a.alloc(100) == 100  # hole at 0 is too small

    def test_double_free_detected(self):
        a = FirstFitAllocator(256)
        off = a.alloc(64)
        a.free(off, 64)
        with pytest.raises(ValueError):
            a.free(off, 64)

    def test_free_out_of_range_rejected(self):
        a = FirstFitAllocator(256)
        with pytest.raises(ValueError):
            a.free(200, 100)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            FirstFitAllocator(0)
        a = FirstFitAllocator(64)
        with pytest.raises(ValueError):
            a.alloc(0)
        with pytest.raises(ValueError):
            a.free(0, 0)


class TestBinned:
    def test_small_allocs_use_bins(self):
        a = BinnedAllocator(16384, bin_size=1024, bin_count=8)
        offs = [a.alloc(100) for _ in range(8)]
        assert all(a.used_bin(o) for o in offs)
        assert len(set(offs)) == 8

    def test_bins_grow_on_demand_from_the_arena(self):
        a = BinnedAllocator(16384, bin_size=1024, bin_count=8)
        offs = [a.alloc(100) for _ in range(9)]
        assert all(o is not None for o in offs)
        assert all(a.used_bin(o) for o in offs)

    def test_large_allocs_skip_bins(self):
        a = BinnedAllocator(16384, bin_size=1024, bin_count=8)
        off = a.alloc(2048)
        assert not a.used_bin(off)

    def test_large_alloc_can_use_whole_region(self):
        # idle cached bins must not squeeze out a big eager message
        a = BinnedAllocator(16384, bin_size=1024, bin_count=8)
        for _ in range(8):
            off = a.alloc(100)
            a.free(off, 100)  # all eight bins now cached
        big = a.alloc(16384)
        assert big is not None

    def test_two_8k_messages_fit(self):
        # the Fig-9 pipelining property: two 8 KB eager messages in flight
        a = BinnedAllocator(16384, bin_size=1024, bin_count=8)
        x = a.alloc(8192)
        y = a.alloc(8192)
        assert x is not None and y is not None

    def test_bin_free_and_reuse(self):
        a = BinnedAllocator(16384)
        off = a.alloc(512)
        a.free(off, 512)
        off2 = a.alloc(512)
        assert a.used_bin(off2)

    def test_double_bin_free_detected(self):
        a = BinnedAllocator(16384)
        off = a.alloc(512)
        a.free(off, 512)
        with pytest.raises(ValueError):
            a.free(off, 512)

    def test_bins_cannot_consume_region(self):
        with pytest.raises(ValueError):
            BinnedAllocator(4096, bin_size=1024, bin_count=8)


@st.composite
def alloc_free_script(draw):
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"),
                      st.integers(min_value=1, max_value=4096)),
            st.tuples(st.just("free"),
                      st.integers(min_value=0, max_value=30)),
        ),
        max_size=60,
    ))


class TestAllocatorProperties:
    @given(script=alloc_free_script(),
           kind=st.sampled_from(["firstfit", "binned"]))
    @settings(max_examples=120)
    def test_no_overlap_and_conservation(self, script, kind):
        cap = 16384
        a = (FirstFitAllocator(cap) if kind == "firstfit"
             else BinnedAllocator(cap))
        live = []  # (offset, length)
        for op, arg in script:
            if op == "alloc":
                off = a.alloc(arg)
                if off is None:
                    continue
                # inside the region
                assert 0 <= off and off + arg <= cap
                # no overlap with any live allocation
                for o2, l2 in live:
                    assert off + arg <= o2 or o2 + l2 <= off, \
                        f"overlap: ({off},{arg}) vs ({o2},{l2})"
                live.append((off, arg))
            else:
                if not live:
                    continue
                off, length = live.pop(arg % len(live))
                a.free(off, length)
        # freeing everything restores all capacity
        for off, length in live:
            a.free(off, length)
        assert a.free_bytes == cap

    @given(total=st.integers(min_value=1, max_value=1 << 40),
           prefix=st.integers(min_value=0, max_value=4096))
    def test_rts_word_roundtrip(self, total, prefix):
        t, p = unpack_rts_len(pack_rts_len(total, prefix))
        assert (t, p) == (total, prefix)

    @given(offset=st.integers(min_value=0, max_value=16384),
           length=st.integers(min_value=1, max_value=16384))
    def test_free_word_roundtrip(self, offset, length):
        o, l = unpack_free(pack_free(offset, length))
        assert (o, l) == (offset, length)
