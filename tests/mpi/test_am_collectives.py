"""AM-direct collectives (the §5 future-work extension)."""

import pytest

from repro.mpi.am_collectives import (
    am_alltoall,
    am_bcast,
    setup_am_collectives,
)
from tests.mpi.conftest import make_mpi, run_ranks


def make_ctxs(nprocs=4, max_bytes=4096):
    m, mpis = make_mpi(nprocs)
    ctxs = setup_am_collectives(mpis, max_bytes=max_bytes)
    return m, mpis, ctxs


class TestAmBcast:
    @pytest.mark.parametrize("nprocs", [2, 4, 7])
    @pytest.mark.parametrize("root", [0, 1])
    def test_broadcast_reaches_everyone(self, nprocs, root):
        m, mpis, ctxs = make_ctxs(nprocs)
        payload = b"direct-am-bcast!" * 7
        got = {}

        def prog(rank):
            def go():
                v = yield from am_bcast(
                    ctxs[rank], payload if rank == root else None, root)
                got[rank] = v
                yield from mpis[rank].barrier()
            return go()

        run_ranks(m, prog)
        assert all(v == payload for v in got.values())

    def test_repeated_broadcasts(self):
        m, mpis, ctxs = make_ctxs(4)
        got = {r: [] for r in range(4)}

        def prog(rank):
            def go():
                for it in range(3):
                    v = yield from am_bcast(
                        ctxs[rank],
                        bytes([it]) * 10 if rank == 0 else None, 0)
                    got[rank].append(v)
                    yield from mpis[rank].barrier()
            return go()

        run_ranks(m, prog)
        for r in range(4):
            assert got[r] == [bytes([it]) * 10 for it in range(3)]

    def test_root_must_supply_payload(self):
        m, mpis, ctxs = make_ctxs(2)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from am_bcast(ctxs[0], None, 0)
                else:
                    return
                    yield
            return go()

        with pytest.raises(ValueError):
            run_ranks(m, prog)

    def test_oversized_payload_rejected(self):
        m, mpis, ctxs = make_ctxs(2, max_bytes=64)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from am_bcast(ctxs[0], bytes(100), 0)
                else:
                    return
                    yield
            return go()

        with pytest.raises(ValueError):
            run_ranks(m, prog)


class TestAmAlltoall:
    def test_permutes_correctly(self):
        m, mpis, ctxs = make_ctxs(4)
        out = {}

        def prog(rank):
            def go():
                chunks = [bytes([rank, dst]) * (10 + dst)
                          for dst in range(4)]
                res = yield from am_alltoall(ctxs[rank], chunks)
                out[rank] = res
                yield from mpis[rank].barrier()
            return go()

        run_ranks(m, prog)
        for rank in range(4):
            assert out[rank] == [bytes([src, rank]) * (10 + rank)
                                 for src in range(4)]

    def test_variable_sizes(self):
        m, mpis, ctxs = make_ctxs(3, max_bytes=2048)
        out = {}

        def prog(rank):
            def go():
                chunks = [bytes([rank + 1]) * (100 * (dst + 1))
                          for dst in range(3)]
                res = yield from am_alltoall(ctxs[rank], chunks)
                out[rank] = res
            return go()

        run_ranks(m, prog)
        for rank in range(3):
            assert out[rank] == [bytes([src + 1]) * (100 * (rank + 1))
                                 for src in range(3)]

    def test_repeated_alltoalls(self):
        m, mpis, ctxs = make_ctxs(4, max_bytes=512)
        ok = []

        def prog(rank):
            def go():
                for it in range(3):
                    chunks = [bytes([it * 16 + rank]) * 64
                              for _ in range(4)]
                    res = yield from am_alltoall(ctxs[rank], chunks)
                    good = all(res[src] == bytes([it * 16 + src]) * 64
                               for src in range(4))
                    ok.append(good)
                    yield from mpis[rank].barrier()
            return go()

        run_ranks(m, prog)
        assert all(ok) and len(ok) == 12

    def test_faster_than_generic_mpich_alltoall(self):
        """The §5 claim: AM-direct beats the MPICH-generic alltoall."""
        n, size = 4096, 8

        def generic():
            m, mpis = make_mpi(size)

            def prog(rank):
                def go():
                    yield from mpis[rank].alltoall([bytes(n)] * size)
                return go()

            run_ranks(m, prog, limit=1e9)
            return m.sim.now

        def direct():
            m, mpis, ctxs = make_ctxs(size, max_bytes=n)

            def prog(rank):
                def go():
                    yield from am_alltoall(ctxs[rank], [bytes(n)] * size)
                return go()

            run_ranks(m, prog, limit=1e9)
            return m.sim.now

        t_generic = generic()
        t_direct = direct()
        assert t_direct < t_generic * 0.8
