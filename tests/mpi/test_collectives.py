"""MPICH generic collectives over every MPI variant."""

import numpy as np
import pytest

from tests.mpi.conftest import make_mpi, make_mpif, run_ranks


class TestBarrier:
    @pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
    def test_barrier_holds_everyone(self, nprocs):
        m, mpis = make_mpi(nprocs)
        times = {}

        def prog(rank):
            def go():
                from repro.sim import Delay
                yield Delay(200.0 * rank)
                yield from mpis[rank].barrier()
                times[rank] = m.sim.now
            return go()

        run_ranks(m, prog)
        assert min(times.values()) >= 200.0 * (nprocs - 1)

    def test_repeated_barriers(self, any_mpi4):
        m, mpis = any_mpi4
        order = []

        def prog(rank):
            def go():
                for it in range(4):
                    yield from mpis[rank].barrier()
                    order.append(it)
            return go()

        run_ranks(m, prog)
        for it in range(4):
            assert set(order[4 * it: 4 * it + 4]) == {it}


class TestBcastReduce:
    @pytest.mark.parametrize("root", [0, 2])
    def test_bcast(self, any_mpi4, root):
        m, mpis = any_mpi4
        out = {}

        def prog(rank):
            def go():
                v = yield from mpis[rank].bcast(
                    b"broadcast!" if rank == root else None, root)
                out[rank] = v
            return go()

        run_ranks(m, prog)
        assert all(v == b"broadcast!" for v in out.values())

    def test_bcast_large_payload(self):
        m, mpis = make_mpi(4)
        blob = bytes(range(256)) * 200  # 51 KB -> rendez-vous path
        out = {}

        def prog(rank):
            def go():
                v = yield from mpis[rank].bcast(
                    blob if rank == 0 else None, 0)
                out[rank] = v
            return go()

        run_ranks(m, prog)
        assert all(v == blob for v in out.values())

    def test_reduce_sum(self, any_mpi4):
        m, mpis = any_mpi4
        out = {}

        def prog(rank):
            def go():
                arr = np.full(16, rank + 1, dtype=np.float64)
                res = yield from mpis[rank].reduce(arr, "sum", 0)
                out[rank] = res
            return go()

        run_ranks(m, prog)
        assert out[1] is None
        assert np.allclose(out[0], 1 + 2 + 3 + 4)

    @pytest.mark.parametrize("op,expect", [("max", 4), ("min", 1),
                                           ("prod", 24)])
    def test_reduce_ops(self, op, expect):
        m, mpis = make_mpi(4)
        out = {}

        def prog(rank):
            def go():
                arr = np.array([rank + 1.0])
                res = yield from mpis[rank].reduce(arr, op, 0)
                out[rank] = res
            return go()

        run_ranks(m, prog)
        assert out[0][0] == expect

    def test_allreduce(self, any_mpi4):
        m, mpis = any_mpi4
        out = {}

        def prog(rank):
            def go():
                arr = np.arange(8, dtype=np.int64) * (rank + 1)
                res = yield from mpis[rank].allreduce(arr, "sum")
                out[rank] = res
            return go()

        run_ranks(m, prog)
        expect = np.arange(8, dtype=np.int64) * 10
        for rank in range(4):
            assert (out[rank] == expect).all()


class TestGatherScatter:
    def test_gather(self, any_mpi4):
        m, mpis = any_mpi4
        out = {}

        def prog(rank):
            def go():
                res = yield from mpis[rank].gather(bytes([rank] * 3), 0)
                out[rank] = res
            return go()

        run_ranks(m, prog)
        assert out[0] == [bytes([r] * 3) for r in range(4)]
        assert out[2] is None

    def test_scatter(self, any_mpi4):
        m, mpis = any_mpi4
        out = {}

        def prog(rank):
            def go():
                chunks = ([bytes([r]) * 4 for r in range(4)]
                          if rank == 0 else None)
                res = yield from mpis[rank].scatter(chunks, 0)
                out[rank] = res
            return go()

        run_ranks(m, prog)
        assert out == {r: bytes([r]) * 4 for r in range(4)}

    def test_scatter_requires_chunks_at_root(self):
        m, mpis = make_mpi(2)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].scatter(None, 0)
                else:
                    yield from mpis[1].scatter(None, 0)
            return go()

        with pytest.raises(ValueError):
            run_ranks(m, prog)

    def test_allgather(self, any_mpi4):
        m, mpis = any_mpi4
        out = {}

        def prog(rank):
            def go():
                res = yield from mpis[rank].allgather(bytes([rank * 10]))
                out[rank] = res
            return go()

        run_ranks(m, prog)
        for rank in range(4):
            assert out[rank] == [bytes([r * 10]) for r in range(4)]


class TestAlltoall:
    def test_alltoall_permutes(self, any_mpi4):
        m, mpis = any_mpi4
        out = {}

        def prog(rank):
            def go():
                chunks = [bytes([rank, dst]) for dst in range(4)]
                res = yield from mpis[rank].alltoall(chunks)
                out[rank] = res
            return go()

        run_ranks(m, prog)
        for rank in range(4):
            assert out[rank] == [bytes([src, rank]) for src in range(4)]

    def test_staggered_matches_naive_result(self):
        for staggered in (False, True):
            m, mpis = make_mpi(4)
            out = {}

            def prog(rank):
                def go():
                    chunks = [bytes([rank * 4 + dst]) * 8 for dst in range(4)]
                    res = yield from mpis[rank].alltoall(
                        chunks, staggered=staggered)
                    out[rank] = res
                return go()

            run_ranks(m, prog)
            for rank in range(4):
                assert out[rank] == [bytes([src * 4 + rank]) * 8
                                     for src in range(4)]

    def test_staggered_relieves_hotspot(self):
        """§4.4: the naive rank-ordered alltoall hot-spots the destination
        link; staggering must be measurably faster for bulk payloads."""
        def run(staggered):
            m, mpis = make_mpi(8)
            chunk = bytes(8192)

            def prog(rank):
                def go():
                    yield from mpis[rank].alltoall([chunk] * 8,
                                                   staggered=staggered)
                return go()

            run_ranks(m, prog, limit=1e9)
            return m.sim.now

        naive = run(False)
        spread = run(True)
        assert spread < naive

    def test_wrong_chunk_count_rejected(self):
        m, mpis = make_mpi(2)

        def prog(rank):
            def go():
                yield from mpis[rank].alltoall([b"x"] * 3)
            return go()

        with pytest.raises(ValueError):
            run_ranks(m, prog)
