"""Communicator semantics: ranks, dup, split."""

import pytest

from repro.mpi.comm import Communicator


class TestBasics:
    def test_rank_and_size(self):
        c = Communicator([3, 5, 9], my_world_rank=5)
        assert c.size == 3
        assert c.rank == 1
        assert c.world_rank_of(2) == 9

    def test_membership_required(self):
        with pytest.raises(ValueError):
            Communicator([0, 1], my_world_rank=7)

    def test_contexts_unique_by_default(self):
        a = Communicator([0, 1], 0)
        b = Communicator([0, 1], 0)
        assert a.context != b.context


class TestDup:
    def test_dup_same_group_new_context(self):
        c = Communicator([0, 1, 2], 1, context=5)
        d = c.dup(99)
        assert d.world_ranks == c.world_ranks
        assert d.rank == c.rank
        assert d.context == 99 != c.context


class TestSplit:
    def test_split_by_color(self):
        c = Communicator([0, 1, 2, 3], 2, context=7)
        colors = [0, 1, 0, 1]
        keys = [0, 0, 1, 1]
        sub = c.split(color=colors[c.rank], key=keys[c.rank],
                      all_colors=colors, all_keys=keys,
                      new_context_base=100)
        # world rank 2 has color 0; its group is world ranks {0, 2}
        assert sub.world_ranks == [0, 2]
        assert sub.rank == 1
        assert sub.context == 100

    def test_split_key_orders_ranks(self):
        c = Communicator([0, 1, 2], 0, context=7)
        colors = [0, 0, 0]
        keys = [2, 1, 0]  # reverse order
        sub = c.split(0, keys[0], colors, keys, 200)
        assert sub.world_ranks == [2, 1, 0]
        assert sub.rank == 2

    def test_split_isolates_contexts_per_color(self):
        c = Communicator([0, 1], 0, context=7)
        s0 = c.split(0, 0, [0, 1], [0, 0], 300)
        c2 = Communicator([0, 1], 1, context=7)
        s1 = c2.split(1, 0, [0, 1], [0, 0], 300)
        assert s0.context != s1.context
