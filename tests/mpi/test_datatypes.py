"""MPI derived datatypes: pack/unpack round-trips + typed transport."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    INT,
    Basic,
    Contiguous,
    Indexed,
    Vector,
    column_type,
    pack_cost_us,
)
from tests.mpi.conftest import make_mpi, run_ranks


class TestBasics:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8

    def test_basic_roundtrip(self):
        raw = b"\x01\x02\x03\x04"
        packed = INT.pack(raw)
        out = bytearray(4)
        INT.unpack(packed, out)
        assert bytes(out) == raw

    def test_basic_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            DOUBLE.pack(b"abc")


class TestContiguous:
    def test_geometry(self):
        t = Contiguous(10, DOUBLE)
        assert t.packed_size == 80
        assert t.extent == 80

    def test_roundtrip(self):
        t = Contiguous(4, INT)
        raw = bytes(range(16))
        out = bytearray(16)
        t.unpack(t.pack(raw), out)
        assert bytes(out) == raw

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Contiguous(-1, BYTE)


class TestVector:
    def test_column_of_matrix(self):
        rows, cols = 4, 6
        mat = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
        col = column_type(rows, cols)
        packed = col.pack(mat.tobytes())
        got = np.frombuffer(packed, np.float64)
        assert (got == mat[:, 0]).all()

    def test_scatter_back(self):
        rows, cols = 3, 5
        col = column_type(rows, cols)
        data = np.array([7.0, 8.0, 9.0])
        image = bytearray(col.extent)
        col.unpack(data.tobytes(), image)
        mat = np.frombuffer(bytes(image), np.float64)
        assert mat[0] == 7.0 and mat[cols] == 8.0 and mat[2 * cols] == 9.0

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ValueError):
            Vector(count=3, blocklength=4, stride=2, base=BYTE)

    def test_empty_vector(self):
        t = Vector(0, 1, 1, BYTE)
        assert t.packed_size == 0 and t.extent == 0


class TestIndexed:
    def test_roundtrip(self):
        t = Indexed([2, 1, 3], [0, 4, 7], BYTE)
        raw = bytes(range(10))
        packed = t.pack(raw)
        assert packed == bytes([0, 1, 4, 7, 8, 9])
        out = bytearray(t.extent)
        t.unpack(packed, out)
        for b, d in zip([2, 1, 3], [0, 4, 7]):
            assert out[d: d + b] == raw[d: d + b]

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValueError):
            Indexed([1, 2], [0], BYTE)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Indexed([4, 2], [0, 2], BYTE)

    @given(
        geometry=st.lists(
            st.tuples(st.integers(1, 8), st.integers(0, 8)),
            min_size=1, max_size=6),
    )
    @settings(max_examples=80)
    def test_property_roundtrip(self, geometry):
        # build non-overlapping blocks by laying them out cumulatively
        blocklengths, displacements = [], []
        pos = 0
        for length, gap in geometry:
            displacements.append(pos + gap)
            blocklengths.append(length)
            pos += gap + length
        t = Indexed(blocklengths, displacements, BYTE)
        raw = bytes((i * 31) % 256 for i in range(t.extent))
        out = bytearray(t.extent)
        t.unpack(t.pack(raw), out)
        for b, d in zip(blocklengths, displacements):
            assert out[d: d + b] == raw[d: d + b]


class TestTypedTransport:
    def test_column_exchange_over_mpi(self):
        """Send a matrix column with a vector type; it lands scattered."""
        rows, cols = 8, 8
        m, mpis = make_mpi(2)
        mat = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
        col = column_type(rows, cols)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send_typed(mat.tobytes(), col, 1,
                                                  tag=3)
                else:
                    image, st_ = yield from mpis[1].recv_typed(col, 0, tag=3)
                    got = np.frombuffer(image, np.float64)
                    out.append(got[::cols].copy())
            return go()

        run_ranks(m, prog)
        assert (out[0] == mat[:, 0]).all()

    def test_pack_cost_positive_and_strided_costlier(self):
        from repro.hardware.params import HostParams

        host = HostParams()
        contig = Contiguous(128, DOUBLE)
        strided = Vector(128, 1, 4, DOUBLE)
        assert pack_cost_us(contig, host) > 0
        assert pack_cost_us(strided, host) > pack_cost_us(contig, host)


class TestExtendedRequests:
    def test_waitany_returns_first_done(self):
        m, mpis = make_mpi(2)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    from repro.sim import Delay
                    yield Delay(500.0)
                    yield from mpis[0].send(b"beta", 1, tag=2)
                    yield from mpis[0].send(b"alpha", 1, tag=1)
                else:
                    r1 = yield from mpis[1].irecv(8, 0, tag=1)
                    r2 = yield from mpis[1].irecv(8, 0, tag=2)
                    i, st_ = yield from mpis[1].waitany([r1, r2])
                    out.append(i)
                    yield from mpis[1].waitall([r1, r2])
            return go()

        run_ranks(m, prog)
        assert out == [1]  # tag=2 was sent first

    def test_testall_and_waitsome(self):
        m, mpis = make_mpi(2)
        flags = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(b"x", 1, tag=1)
                    yield from mpis[0].send(b"y", 1, tag=2)
                else:
                    r1 = yield from mpis[1].irecv(4, 0, tag=1)
                    r2 = yield from mpis[1].irecv(4, 0, tag=2)
                    done = yield from mpis[1].waitsome([r1, r2])
                    flags.append(bool(done))
                    yield from mpis[1].waitall([r1, r2])
                    flags.append((yield from mpis[1].testall([r1, r2])))
            return go()

        run_ranks(m, prog)
        assert flags == [True, True]

    def test_waitany_empty_rejected(self):
        m, mpis = make_mpi(2)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].waitany([])
                else:
                    return
                    yield
            return go()

        with pytest.raises(ValueError):
            run_ranks(m, prog)


class TestScan:
    def test_inclusive_prefix_sum(self):
        m, mpis = make_mpi(4)
        out = {}

        def prog(rank):
            def go():
                arr = np.array([float(rank + 1)])
                res = yield from mpis[rank].scan(arr, "sum")
                out[rank] = res[0]
            return go()

        run_ranks(m, prog)
        assert out == {0: 1.0, 1: 3.0, 2: 6.0, 3: 10.0}

    def test_scan_max(self):
        m, mpis = make_mpi(3)
        out = {}
        vals = [5.0, 2.0, 9.0]

        def prog(rank):
            def go():
                res = yield from mpis[rank].scan(np.array([vals[rank]]),
                                                 "max")
                out[rank] = res[0]
            return go()

        run_ranks(m, prog)
        assert out == {0: 5.0, 1: 5.0, 2: 9.0}
