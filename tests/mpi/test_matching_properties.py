"""Property-based MPI matching: arbitrary send/recv schedules must pair
every message with its receive, in MPI order, across protocol boundaries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.mpi.conftest import make_mpi, run_ranks


@st.composite
def traffic(draw):
    """A schedule: messages with tags and sizes straddling the
    eager/rendez-vous boundary, and a receive order that permutes tags."""
    n = draw(st.integers(min_value=1, max_value=8))
    tags = list(range(n))
    sizes = [draw(st.sampled_from([0, 3, 128, 1024, 8192, 9000, 20_000]))
             for _ in range(n)]
    recv_order = draw(st.permutations(tags))
    return list(zip(tags, sizes)), recv_order


@given(t=traffic())
@settings(max_examples=15, deadline=None)
def test_out_of_order_receives_match_correctly(t):
    sends, recv_order = t
    m, mpis = make_mpi(2)
    payloads = {tag: bytes([(tag * 29 + 1) % 256]) * size if size else b""
                for tag, size in sends}
    sizes = dict(sends)
    got = {}

    def prog(rank):
        def go():
            if rank == 0:
                # nonblocking sends: receiving in a permuted order with
                # blocking sends would be an unsafe MPI program (a
                # rendez-vous send cannot complete until its receive posts)
                reqs = []
                for tag, _size in sends:
                    r = yield from mpis[0].isend(payloads[tag], 1, tag=tag)
                    reqs.append(r)
                yield from mpis[0].waitall(reqs)
            else:
                for tag in recv_order:
                    d, st_ = yield from mpis[1].recv(
                        max(sizes[tag], 1), 0, tag=tag)
                    got[tag] = d
        return go()

    run_ranks(m, prog, limit=1e10)
    for tag, _size in sends:
        assert got[tag] == payloads[tag], tag


def test_eager_exhaustion_falls_back_to_rendezvous():
    """Regression: a receiver waiting for a message while unconsumed
    unexpected messages hold the entire 16 KB region used to deadlock;
    the sender must fall back to rendez-vous (progress guarantee)."""
    sends = [(0, 20_000), (1, 8192), (2, 9000), (3, 0), (4, 3),
             (5, 9000), (6, 9000)]
    order = [4, 1, 3, 5, 0, 2, 6]
    m, mpis = make_mpi(2)
    payloads = {tag: bytes([(tag * 29 + 1) % 256]) * size
                for tag, size in sends}
    sizes = dict(sends)
    got = {}

    def prog(rank):
        def go():
            if rank == 0:
                reqs = []
                for tag, _ in sends:
                    r = yield from mpis[0].isend(payloads[tag], 1, tag=tag)
                    reqs.append(r)
                yield from mpis[0].waitall(reqs)
            else:
                for tag in order:
                    d, _ = yield from mpis[1].recv(max(sizes[tag], 1), 0,
                                                   tag=tag)
                    got[tag] = d
        return go()

    run_ranks(m, prog, limit=1e9)
    assert all(got[t] == payloads[t] for t, _ in sends)
    assert mpis[0].adi.stats.get("eager_fallback_rendezvous") >= 1


@given(
    sizes=st.lists(st.sampled_from([0, 64, 4096, 8192, 12_000, 30_000]),
                   min_size=1, max_size=4),
)
@settings(max_examples=12, deadline=None)
def test_bidirectional_streams_do_not_cross(sizes):
    """Both ranks send the same schedule to each other simultaneously;
    every direction must deliver its own data."""
    m, mpis = make_mpi(2)
    outs = {0: [], 1: []}

    def prog(rank):
        def go():
            peer = 1 - rank
            reqs = []
            for i, size in enumerate(sizes):
                payload = bytes([rank * 7 + 1]) * size
                r = yield from mpis[rank].isend(payload, peer, tag=i)
                reqs.append(r)
            for i, size in enumerate(sizes):
                d, _ = yield from mpis[rank].recv(max(size, 1), peer, tag=i)
                outs[rank].append(d)
            yield from mpis[rank].waitall(reqs)
        return go()

    run_ranks(m, prog, limit=1e10)
    for rank in (0, 1):
        peer = 1 - rank
        for i, size in enumerate(sizes):
            assert outs[rank][i] == bytes([peer * 7 + 1]) * size
