"""MPI-F model specifics: protocol switch, node tuning, NAS parity."""

import pytest

from repro.mpi.mpif import thin_node_costs, wide_node_costs
from tests.mpi.conftest import make_mpif, run_ranks


class TestProtocolSwitch:
    def _one_way(self, n, eager_max=None, kind="sp-thin"):
        m, mpis = make_mpif(2, kind=kind, eager_max=eager_max)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(bytes(n), 1, tag=1)
                else:
                    d, _ = yield from mpis[1].recv(n, 0, tag=1)
                    out.append(len(d))
            return go()

        run_ranks(m, prog)
        return m, mpis, out

    def test_eager_below_switch(self):
        m, mpis, out = self._one_way(4096)
        assert out == [4096]
        assert mpis[0].adi.stats.get("eager_sends") == 1
        assert mpis[0].adi.stats.get("rendezvous_sends") == 0

    def test_rendezvous_above_switch(self):
        m, mpis, out = self._one_way(4097)
        assert out == [4097]
        assert mpis[0].adi.stats.get("rendezvous_sends") == 1

    def test_switch_overridable(self):
        m, mpis, out = self._one_way(10_000, eager_max=16384)
        assert out == [10_000]
        assert mpis[0].adi.stats.get("eager_sends") == 1

    def test_rendezvous_pays_extra_roundtrip(self):
        def time_for(n, eager_max):
            m, mpis, _ = self._one_way(n, eager_max=eager_max)
            return m.sim.now

        fast = time_for(6000, eager_max=8192)   # eager
        slow = time_for(6000, eager_max=4096)   # rendez-vous
        assert slow > fast + 50.0  # roughly one extra round trip


class TestNodeTuning:
    def test_wide_costs_lower_fixed_higher_per_packet(self):
        thin, wide = thin_node_costs(), wide_node_costs()
        assert wide.send_fixed < thin.send_fixed
        assert wide.recv_fixed < thin.recv_fixed
        assert wide.per_packet > thin.per_packet

    def test_unexpected_messages_supported(self):
        m, mpis = make_mpif(2)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(b"first", 1, tag=7)
                    yield from mpis[0].send(b"second", 1, tag=8)
                else:
                    # receive in reverse: tag=7 must queue unexpected
                    d8, _ = yield from mpis[1].recv(8, 0, tag=8)
                    d7, _ = yield from mpis[1].recv(8, 0, tag=7)
                    out.extend([d8, d7])
            return go()

        run_ranks(m, prog)
        assert out == [b"second", b"first"]

    def test_unexpected_rendezvous(self):
        m, mpis = make_mpif(2)
        n = 30_000
        data = bytes(i % 256 for i in range(n))
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    req = yield from mpis[0].isend(data, 1, tag=1)
                    yield from mpis[0].send(b"poke", 1, tag=2)
                    yield from mpis[0].wait(req)
                else:
                    yield from mpis[1].recv(8, 0, tag=2)   # forces a poll
                    d, _ = yield from mpis[1].recv(n, 0, tag=1)
                    out.append(d)
            return go()

        run_ranks(m, prog)
        assert out == [data]


class TestCollectivesOverMPIF:
    def test_barrier_and_bcast(self):
        m, mpis = make_mpif(4)
        got = {}

        def prog(rank):
            def go():
                yield from mpis[rank].barrier()
                v = yield from mpis[rank].bcast(
                    b"native" if rank == 0 else None, 0)
                got[rank] = v
            return go()

        run_ranks(m, prog)
        assert all(v == b"native" for v in got.values())
