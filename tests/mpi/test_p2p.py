"""Point-to-point MPI semantics over every implementation variant."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, OPTIMIZED, UNOPTIMIZED
from repro.mpi.config import variant
from tests.mpi.conftest import make_mpi, make_mpif, run_ranks


def _payload(n, seed=0):
    return bytes((i * 13 + seed) % 256 for i in range(n))


class TestBasicSendRecv:
    def test_send_recv(self, any_mpi4):
        m, mpis = any_mpi4
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(b"payload", 3, tag=5)
                elif rank == 3:
                    d, st = yield from mpis[3].recv(64, 0, tag=5)
                    out.append((d, st.source, st.tag))
                else:
                    return
                    yield
            return go()

        run_ranks(m, prog)
        assert out == [(b"payload", 0, 5)]

    @pytest.mark.parametrize("n", [0, 1, 100, 4096, 8192, 8193, 16384,
                                   16385, 100_000])
    def test_all_protocol_sizes(self, n):
        """Crosses every protocol boundary: eager0, buffered, buffered max,
        rendez-vous, hybrid prefix, multi-chunk."""
        m, mpis = make_mpi(2)
        data = _payload(n)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(data, 1)
                else:
                    d, _ = yield from mpis[1].recv(max(n, 1), 0)
                    out.append(d)
            return go()

        run_ranks(m, prog)
        assert out == [data]

    @pytest.mark.parametrize("n", [10, 8192, 60_000])
    def test_mpif_sizes(self, n):
        m, mpis = make_mpif(2)
        data = _payload(n, 1)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(data, 1)
                else:
                    d, _ = yield from mpis[1].recv(n, 0)
                    out.append(d)
            return go()

        run_ranks(m, prog)
        assert out == [data]

    def test_self_send(self):
        m, mpis = make_mpi(2)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(b"me", 0, tag=1)
                    d, _ = yield from mpis[0].recv(8, 0, tag=1)
                    out.append(d)
                else:
                    return
                    yield
            return go()

        run_ranks(m, prog)
        assert out == [b"me"]

    def test_ordering_same_pair(self, any_mpi4):
        m, mpis = any_mpi4
        out = []
        n = 30

        def prog(rank):
            def go():
                if rank == 0:
                    for i in range(n):
                        yield from mpis[0].send(bytes([i]), 1, tag=9)
                elif rank == 1:
                    for i in range(n):
                        d, _ = yield from mpis[1].recv(1, 0, tag=9)
                        out.append(d[0])
                else:
                    return
                    yield
            return go()

        run_ranks(m, prog)
        assert out == list(range(n))


class TestMatching:
    def test_tag_matching_out_of_order(self):
        m, mpis = make_mpi(2)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(b"A", 1, tag=1)
                    yield from mpis[0].send(b"B", 1, tag=2)
                else:
                    b, _ = yield from mpis[1].recv(4, 0, tag=2)
                    a, _ = yield from mpis[1].recv(4, 0, tag=1)
                    out.extend([b, a])
            return go()

        run_ranks(m, prog)
        assert out == [b"B", b"A"]

    def test_any_source_any_tag(self):
        m, mpis = make_mpi(3)
        out = []

        def prog(rank):
            def go():
                if rank == 2:
                    for _ in range(2):
                        d, st = yield from mpis[2].recv(
                            16, ANY_SOURCE, ANY_TAG)
                        out.append((d, st.source))
                else:
                    yield from mpis[rank].send(
                        f"from{rank}".encode(), 2, tag=rank)
            return go()

        run_ranks(m, prog)
        assert sorted(out) == [(b"from0", 0), (b"from1", 1)]

    def test_communicator_isolation(self):
        """Traffic on a dup'd communicator never matches the parent."""
        m, mpis = make_mpi(2)
        out = []

        def prog(rank):
            def go():
                comm2 = mpis[rank].comm_world.dup(77)
                if rank == 0:
                    yield from mpis[0].send(b"world", 1, tag=4)
                    yield from mpis[0].send(b"dup", 1, tag=4, comm=comm2)
                else:
                    d2, _ = yield from mpis[1].recv(8, 0, tag=4, comm=comm2)
                    d1, _ = yield from mpis[1].recv(8, 0, tag=4)
                    out.extend([d2, d1])
            return go()

        run_ranks(m, prog)
        assert out == [b"dup", b"world"]

    def test_unexpected_rendezvous(self):
        """A large message whose rts is processed before its receive is
        posted goes through the unexpected list (Fig. 5 right)."""
        m, mpis = make_mpi(2)
        n = 50_000
        data = _payload(n, 2)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    req = yield from mpis[0].isend(data, 1, tag=1)
                    yield from mpis[0].send(b"small", 1, tag=2)
                    yield from mpis[0].wait(req)
                else:
                    # receiving tag=2 forces polling past tag=1's rts,
                    # which is therefore queued unexpected
                    s, _ = yield from mpis[1].recv(8, 0, tag=2)
                    d, _ = yield from mpis[1].recv(n, 0, tag=1)
                    out.append((s, d))
            return go()

        run_ranks(m, prog)
        assert out == [(b"small", data)]
        assert mpis[1].adi.stats.get("rts_unexpected") == 1


class TestNonBlocking:
    def test_isend_irecv_wait(self):
        m, mpis = make_mpi(2)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    r1 = yield from mpis[0].isend(b"one", 1, tag=1)
                    r2 = yield from mpis[0].isend(b"two", 1, tag=2)
                    yield from mpis[0].waitall([r1, r2])
                else:
                    r2 = yield from mpis[1].irecv(8, 0, tag=2)
                    r1 = yield from mpis[1].irecv(8, 0, tag=1)
                    yield from mpis[1].waitall([r2, r1])
                    out.extend([r1.data, r2.data])
            return go()

        run_ranks(m, prog)
        assert out == [b"one", b"two"]

    def test_test_polls_without_blocking(self):
        m, mpis = make_mpi(2)
        flags = []

        def prog(rank):
            def go():
                if rank == 1:
                    req = yield from mpis[1].irecv(8, 0, tag=1)
                    done_first = yield from mpis[1].test(req)
                    flags.append(done_first)
                    while not (yield from mpis[1].test(req)):
                        yield from mpis[1].adi._wait_progress()
                    flags.append(req.data)
                else:
                    from repro.sim import Delay
                    yield Delay(300.0)
                    yield from mpis[0].send(b"late", 1, tag=1)
            return go()

        run_ranks(m, prog)
        assert flags[0] is False
        assert flags[1] == b"late"

    def test_sendrecv_exchange(self, any_mpi4):
        m, mpis = any_mpi4
        out = {}

        def prog(rank):
            def go():
                peer = rank ^ 1
                d, _ = yield from mpis[rank].sendrecv(
                    bytes([rank]), peer, 7, 4, peer, 7)
                out[rank] = d[0]
            return go()

        run_ranks(m, prog)
        assert out == {0: 1, 1: 0, 2: 3, 3: 2}

    def test_probe(self):
        m, mpis = make_mpi(2)
        seen = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(b"x" * 37, 1, tag=3)
                else:
                    st = yield from mpis[1].probe(0, 3)
                    seen.append(st.count)
                    d, _ = yield from mpis[1].recv(64, 0, 3)
                    seen.append(len(d))
            return go()

        run_ranks(m, prog)
        assert seen == [37, 37]


class TestBufferManagement:
    def test_region_exhaustion_recovers(self):
        """A flood of eager messages larger than the 16 KB region must
        stall and recover via frees, never deadlock or corrupt."""
        m, mpis = make_mpi(2)
        n, count = 4000, 12  # 48 KB through a 16 KB region
        datas = [_payload(n, i) for i in range(count)]
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    for i in range(count):
                        yield from mpis[0].send(datas[i], 1, tag=i)
                else:
                    for i in range(count):
                        d, _ = yield from mpis[1].recv(n, 0, tag=i)
                        out.append(d)
            return go()

        run_ranks(m, prog)
        assert out == datas

    def test_combined_frees_fewer_replies(self):
        def run(cfg):
            m, mpis = make_mpi(2, cfg)
            count = 32

            def prog(rank):
                def go():
                    if rank == 0:
                        for i in range(count):
                            yield from mpis[0].send(b"z" * 64, 1, tag=i)
                    else:
                        for i in range(count):
                            yield from mpis[1].recv(64, 0, tag=i)
                return go()

            run_ranks(m, prog)
            return (mpis[1].adi.stats.get("free_replies")
                    + mpis[1].adi.stats.get("free_requests"))

        frees_combined = run(OPTIMIZED)
        frees_single = run(UNOPTIMIZED)
        assert frees_combined < frees_single / 2

    def test_binned_allocator_used_for_small(self):
        m, mpis = make_mpi(2, OPTIMIZED)
        alloc = mpis[0].adi._alloc[1]
        off = alloc.alloc(100)
        assert alloc.used_bin(off)
        alloc.free(off, 100)

    def test_hybrid_prefix_sent(self):
        m, mpis = make_mpi(2, OPTIMIZED)
        n = 20_000
        data = _payload(n)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(data, 1)
                else:
                    d, _ = yield from mpis[1].recv(n, 0)
                    out.append(d)
            return go()

        run_ranks(m, prog)
        assert out == [data]
        assert mpis[0].adi.stats.get("hybrid_prefixes") == 1
        assert mpis[1].adi.stats.get("prefixes_received") == 1

    def test_no_hybrid_when_disabled(self):
        m, mpis = make_mpi(2, UNOPTIMIZED)
        n = 20_000
        data = _payload(n)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from mpis[0].send(data, 1)
                else:
                    yield from mpis[1].recv(n, 0)
            return go()

        run_ranks(m, prog)
        assert mpis[0].adi.stats.get("hybrid_prefixes") == 0
