"""Validation tests for the rendez-vous header packing."""

import pytest

from repro.mpi.protocol import pack_rts_len, unpack_rts_len


def test_roundtrip():
    word = pack_rts_len(20000, 4096)
    assert unpack_rts_len(word) == (20000, 4096)


def test_zero_lengths_are_legal():
    assert unpack_rts_len(pack_rts_len(0, 0)) == (0, 0)


@pytest.mark.parametrize("total,prefix", [(-1, 0), (0, -1), (-5, -5)])
def test_negative_lengths_rejected(total, prefix):
    with pytest.raises(ValueError, match="non-negative"):
        pack_rts_len(total, prefix)


def test_oversized_prefix_rejected():
    with pytest.raises(ValueError, match="13-bit"):
        pack_rts_len(20000, 1 << 13)
