"""Regression tests for the MPI wait/status bugs the sanitizer flushed.

* ``waitsome([])`` used to spin forever polling an empty list; MPI says
  Waitsome with incount 0 completes nothing and returns immediately.
* Loopback (self) receives stamped the *communicator-local* rank into
  ``status.source`` while every ADI path stamps the world rank — so
  subcommunicator consumers doing ``comm.world_ranks.index(st.source)``
  (e.g. the collectives' gather) blew up or picked the wrong peer
  whenever local != world rank.
"""

from repro.mpi.comm import Communicator
from repro.mpi.status import ANY_SOURCE, ANY_TAG

from .conftest import make_mpi, run_ranks


def test_waitsome_empty_list_returns_immediately():
    m, mpis = make_mpi(2)

    def prog(r):
        def body():
            mpi = mpis[r]
            out = yield from mpi.waitsome([])
            assert out == []
            # and the rank is still functional afterwards
            yield from mpi.barrier()
        return body()

    run_ranks(m, prog)


def test_self_recv_status_carries_world_rank_on_subcomm():
    # a "rotated" subcommunicator: every member's local rank differs
    # from its world rank, the layout that exposed the bug
    m, mpis = make_mpi(2)

    def prog(w):
        def body():
            mpi = mpis[w]
            comm = Communicator([1, 0], w, context=55)
            local = comm.rank
            yield from mpi.isend(b"ping", local, tag=3, comm=comm)
            data, st = yield from mpi.recv(4, src=local, tag=3, comm=comm)
            assert data == b"ping"
            assert st.source == w  # world rank, not the local one
            # the exact consumer that broke: collectives resolve the
            # sender by world_ranks.index(status.source)
            assert comm.world_ranks.index(st.source) == local
        return body()

    run_ranks(m, prog)


def test_self_recv_any_tag_reports_matched_tag():
    m, mpis = make_mpi(2)

    def prog(w):
        def body():
            mpi = mpis[w]
            yield from mpi.isend(b"x", w, tag=7)
            data, st = yield from mpi.recv(1, src=ANY_SOURCE, tag=ANY_TAG)
            assert data == b"x"
            assert st.tag == 7
            assert st.source == w
        return body()

    run_ranks(m, prog)


def test_posted_recv_matched_by_later_self_send():
    m, mpis = make_mpi(2)

    def prog(w):
        def body():
            mpi = mpis[w]
            rreq = yield from mpi.irecv(5, src=w, tag=9)
            yield from mpi.isend(b"hello", w, tag=9)
            st = yield from mpi.wait(rreq)
            assert rreq.data == b"hello"
            assert st.source == w
        return body()

    run_ranks(m, prog)
