"""MPL semantics: matching, blocking/non-blocking, multi-packet messages."""

import pytest

from repro.hardware import build_sp_machine
from repro.mpl import attach_mpl
from repro.mpl.engine import ANY
from repro.sim import Simulator


def make(nprocs=2):
    sim = Simulator()
    m = build_sp_machine(sim, nprocs)
    attach_mpl(m)
    return m


def run(m, *progs, limit=1e8):
    sim = m.sim
    procs = [sim.spawn(p, name=f"mpl{i}") for i, p in enumerate(progs)]
    sim.run_until_processes_done(procs, limit=limit)
    return procs


class TestBasic:
    def test_send_recv_roundtrip_data(self):
        m = make()
        payload = bytes(range(256)) * 3
        out = []

        def sender():
            yield from m.node(0).mpl.mpc_bsend(payload, 1, tag=5)

        def receiver():
            data = yield from m.node(1).mpl.mpc_brecv(4096, 0, tag=5)
            out.append(data)

        run(m, sender(), receiver())
        assert out == [payload]

    @pytest.mark.parametrize("n", [0, 1, 224, 225, 8064, 50_000])
    def test_message_sizes(self, n):
        m = make()
        payload = bytes(i % 251 for i in range(n))
        out = []

        def sender():
            yield from m.node(0).mpl.mpc_bsend(payload, 1)

        def receiver():
            out.append((yield from m.node(1).mpl.mpc_brecv(max(n, 1), 0)))

        run(m, sender(), receiver())
        assert out == [payload]

    def test_messages_ordered_per_tag(self):
        m = make()
        out = []

        def sender():
            for i in range(20):
                yield from m.node(0).mpl.mpc_bsend(bytes([i]), 1, tag=3)

        def receiver():
            for _ in range(20):
                d = yield from m.node(1).mpl.mpc_brecv(1, 0, tag=3)
                out.append(d[0])

        run(m, sender(), receiver())
        assert out == list(range(20))

    def test_truncation_rejected(self):
        m = make()

        def sender():
            yield from m.node(0).mpl.mpc_bsend(b"12345678", 1)

        def receiver():
            yield from m.node(1).mpl.mpc_brecv(4, 0)

        with pytest.raises(ValueError):
            run(m, sender(), receiver())

    def test_send_to_self_rejected(self):
        m = make()

        def sender():
            yield from m.node(0).mpl.mpc_bsend(b"x", 0)

        with pytest.raises(ValueError):
            run(m, sender())


class TestMatching:
    def test_tag_selectivity(self):
        m = make()
        out = []

        def sender():
            yield from m.node(0).mpl.mpc_bsend(b"AA", 1, tag=1)
            yield from m.node(0).mpl.mpc_bsend(b"BB", 1, tag=2)

        def receiver():
            b = yield from m.node(1).mpl.mpc_brecv(2, 0, tag=2)
            a = yield from m.node(1).mpl.mpc_brecv(2, 0, tag=1)
            out.extend([b, a])

        run(m, sender(), receiver())
        assert out == [b"BB", b"AA"]

    def test_wildcard_source(self):
        m = make(3)
        out = []

        def sender(rank, data):
            def go():
                yield from m.node(rank).mpl.mpc_bsend(data, 2, tag=9)
            return go()

        def receiver():
            for _ in range(2):
                d = yield from m.node(2).mpl.mpc_brecv(8, ANY, tag=9)
                out.append(bytes(d))

        run(m, sender(0, b"from0"), sender(1, b"from1"), receiver())
        assert sorted(out) == [b"from0", b"from1"]

    def test_wildcard_tag(self):
        m = make()
        out = []

        def sender():
            yield from m.node(0).mpl.mpc_bsend(b"zz", 1, tag=42)

        def receiver():
            out.append((yield from m.node(1).mpl.mpc_brecv(2, 0, ANY)))

        run(m, sender(), receiver())
        assert out == [b"zz"]


class TestNonBlocking:
    def test_mpc_recv_wait(self):
        m = make()
        out = []

        def sender():
            yield from m.node(0).mpl.mpc_bsend(b"hello", 1, tag=1)

        def receiver():
            h = yield from m.node(1).mpl.mpc_recv(8, 0, tag=1)
            data = yield from m.node(1).mpl.mpc_wait(h)
            out.append(data)

        run(m, sender(), receiver())
        assert out == [b"hello"]

    def test_mpc_status_polls(self):
        m = make()
        out = []

        def sender():
            yield from m.node(0).mpl.mpc_bsend(b"x" * 100, 1, tag=1)

        def receiver():
            mpl = m.node(1).mpl
            h = yield from mpl.mpc_recv(128, 0, tag=1)
            while not (yield from mpl.mpc_status(h)):
                pass
            out.append(h.data)

        run(m, sender(), receiver())
        assert out == [b"x" * 100]

    def test_send_handle_completes_eagerly(self):
        m = make()
        flags = []

        def sender():
            h = yield from m.node(0).mpl.mpc_send(b"data", 1, tag=1)
            flags.append(h.done)

        def receiver():
            yield from m.node(1).mpl.mpc_brecv(8, 0, tag=1)

        run(m, sender(), receiver())
        assert flags == [True]


class TestFlowControl:
    def test_large_stream_does_not_overflow(self):
        """A long burst must stay within the credit window: zero drops."""
        m = make()
        n_msgs, size = 30, 4096

        def sender():
            for i in range(n_msgs):
                yield from m.node(0).mpl.mpc_send(bytes(size), 1, tag=1)

        def receiver():
            for _ in range(n_msgs):
                yield from m.node(1).mpl.mpc_brecv(size, 0, tag=1)

        run(m, sender(), receiver(), limit=1e9)
        assert m.node(1).adapter.stats.get("rx_dropped_overflow") == 0
        assert m.node(1).mpl.engine.stats.get("credits_returned") > 0

    def test_interleaved_bidirectional_traffic(self):
        m = make()
        results = {}

        def peer(me, other):
            def go():
                mpl = m.node(me).mpl
                for i in range(10):
                    yield from mpl.mpc_bsend(bytes([me] * 500), other, tag=i)
                    d = yield from mpl.mpc_brecv(512, other, tag=i)
                    results.setdefault(me, []).append(d[0])
            return go()

        run(m, peer(0, 1), peer(1, 0), limit=1e9)
        assert results[0] == [1] * 10
        assert results[1] == [0] * 10


class TestQueries:
    def test_mpc_environ(self):
        m = make(3)
        assert m.node(2).mpl.mpc_environ() == (3, 2)

    def test_mpc_probe(self):
        m = make()
        found = []

        def sender():
            yield from m.node(0).mpl.mpc_bsend(b"probe-me", 1, tag=6)

        def receiver():
            mpl = m.node(1).mpl
            while True:
                hit = yield from mpl.mpc_probe(0, 6)
                if hit is not None:
                    found.append(hit)
                    break
            yield from mpl.mpc_brecv(16, 0, tag=6)

        run(m, sender(), receiver())
        assert found == [(0, 6, 8)]

    def test_mpc_probe_misses_cleanly(self):
        m = make()

        def prog():
            hit = yield from m.node(0).mpl.mpc_probe()
            assert hit is None

        run(m, prog())

    @pytest.mark.parametrize("nprocs", [2, 4, 5])
    def test_mpc_sync_holds_everyone(self, nprocs):
        from repro.sim import Delay

        m = make(nprocs)
        times = {}

        def prog(rank):
            def go():
                yield Delay(150.0 * rank)
                yield from m.node(rank).mpl.mpc_sync()
                times[rank] = m.sim.now
            return go()

        run(m, *[prog(r) for r in range(nprocs)], limit=1e8)
        assert min(times.values()) >= 150.0 * (nprocs - 1)

    def test_repeated_syncs(self):
        m = make(3)
        order = []

        def prog(rank):
            def go():
                for it in range(3):
                    yield from m.node(rank).mpl.mpc_sync()
                    order.append(it)
            return go()

        run(m, *[prog(r) for r in range(3)], limit=1e8)
        for it in range(3):
            assert set(order[3 * it: 3 * it + 3]) == {it}
