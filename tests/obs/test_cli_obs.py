"""CLI observability surface: --trace-out/--stats, reports, inspect."""

import json

from repro.cli import main
from repro.obs.schema import (
    validate_bench_report,
    validate_chrome_trace,
    validate_jsonl_trace,
)


class TestRoundtripFlags:
    def test_trace_stats_and_report(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        rc = main(["roundtrip", "--iters", "20", "--stats",
                   "--trace-out", trace, "--report-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage attribution" in out
        assert "am.rtt_us histogram" in out

        with open(trace) as f:
            assert validate_chrome_trace(json.load(f)) == []

        report_path = tmp_path / "BENCH_roundtrip.json"
        with open(report_path) as f:
            report = json.load(f)
        assert validate_bench_report(report) == []
        names = [r["name"] for r in report["results"]]
        assert "SP AM one word" in names and "raw ping-pong" in names
        assert all("paper" in r for r in report["results"])
        rtt = report["stats"]["histograms"]["am.rtt_us"]
        assert {"p50", "p95", "p99"} <= set(rtt)
        att = report["stage_attribution"]
        am_row = next(r for r in report["results"]
                      if r["name"] == "SP AM one word")
        # acceptance criterion: stage sum within 5% of the measured rtt
        assert abs(att["stage_sum_us"] - am_row["measured"]) \
            <= 0.05 * am_row["measured"]

    def test_jsonl_format(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        rc = main(["roundtrip", "--iters", "10", "--no-report",
                   "--trace-out", trace, "--trace-format", "jsonl"])
        assert rc == 0
        assert validate_jsonl_trace(trace) == []

    def test_no_report_writes_nothing(self, tmp_path):
        rc = main(["roundtrip", "--iters", "10", "--no-report",
                   "--report-dir", str(tmp_path)])
        assert rc == 0
        assert list(tmp_path.iterdir()) == []


class TestTableReports:
    def test_table2_report(self, tmp_path):
        assert main(["table2", "--report-dir", str(tmp_path)]) == 0
        with open(tmp_path / "BENCH_table2.json") as f:
            report = json.load(f)
        assert validate_bench_report(report) == []
        assert len(report["results"]) == 8  # request/reply x 1..4 words


class TestInspect:
    def test_inspect_all_formats(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        main(["roundtrip", "--iters", "10", "--stats",
              "--trace-out", trace, "--report-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(["inspect", trace,
                   str(tmp_path / "BENCH_roundtrip.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chrome-trace [OK]" in out
        assert "bench-report [OK]" in out
        assert "tx_adapter:REQUEST" in out

    def test_inspect_jsonl(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        main(["roundtrip", "--iters", "5", "--no-report",
              "--trace-out", trace, "--trace-format", "jsonl"])
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        out = capsys.readouterr().out
        assert "jsonl [OK]" in out and "10 spans" in out

    def test_inspect_bad_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}\n")
        assert main(["inspect", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_inspect_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "missing.json")]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestValidateCli:
    def test_validate_module_main(self, tmp_path, capsys):
        from repro.obs.validate import main as vmain

        trace = str(tmp_path / "trace.json")
        main(["roundtrip", "--iters", "5", "--no-report",
              "--trace-out", trace])
        capsys.readouterr()
        assert vmain([trace]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_flags_problems(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}\n")
        from repro.obs.validate import main as vmain

        assert vmain([str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out
