"""Critical-path attribution (:mod:`repro.obs.critpath`) on synthetic
spans and on a live AM ping-pong."""

from types import SimpleNamespace

import pytest

from repro.obs.critpath import (
    CRIT_STAGES,
    attribution_coverage,
    bottleneck_verdict,
    critpath_rollup,
    critpath_stages,
    slowest_exemplars,
)
from repro.obs.span import MessageSpan
from repro.sim.stats import TimeSeries

#: a complete lifecycle: begin 0 .. handler_end 15
_MARKS = {
    "begin": 0.0, "stage": 1.0, "dma_start": 3.0, "wire_exit": 6.0,
    "sw_deliver": 10.0, "visible": 12.0, "consume": 13.0,
    "handler_start": 13.5, "handler_end": 15.0,
}


def _span(trace_id=1, kind="REQUEST", scale=1.0, **kw):
    return MessageSpan(trace_id=trace_id, src=0, dst=1, kind=kind,
                       marks={k: v * scale for k, v in _MARKS.items()}, **kw)


# ---------------------------------------------------------------------------
# per-span stage vectors
# ---------------------------------------------------------------------------

def test_stages_tile_begin_to_handler_end():
    stages = critpath_stages(_span())
    assert set(stages) <= set(CRIT_STAGES)
    assert sum(stages.values()) == pytest.approx(15.0)
    assert stages["staging"] == 1.0
    assert stages["tx_queue"] == 2.0
    assert stages["dma_wire"] == 3.0
    assert stages["switch_hw"] == 4.0
    assert "retransmit_backoff" not in stages
    assert "switch_queue" not in stages


def test_backoff_is_carved_out_of_tx_queue():
    stages = critpath_stages(_span(backoff_us=1.5))
    assert stages["retransmit_backoff"] == 1.5
    assert stages["tx_queue"] == 0.5           # 2.0 - 1.5
    # the carve-out preserves the total: backoff + tx_queue == raw interval
    assert sum(stages.values()) == pytest.approx(15.0)


def test_backoff_larger_than_interval_clamps_tx_queue_to_zero():
    stages = critpath_stages(_span(backoff_us=99.0))
    assert stages["tx_queue"] == 0.0
    assert stages["retransmit_backoff"] == 99.0


def test_switch_interval_splits_into_queue_and_hw():
    stages = critpath_stages(_span(queued_us=3.0))
    assert stages["switch_queue"] == 3.0
    assert stages["switch_hw"] == 1.0          # 4.0 - 3.0
    # accumulated queueing beyond the observed interval clamps
    stages = critpath_stages(_span(queued_us=9.0))
    assert stages["switch_queue"] == 4.0
    assert stages["switch_hw"] == 0.0


def test_missing_and_negative_intervals_are_skipped():
    marks = dict(_MARKS)
    del marks["visible"]                       # never became host-visible
    s = MessageSpan(trace_id=1, src=0, dst=1, kind="REQUEST", marks=marks)
    stages = critpath_stages(s)
    assert "rx_dma" not in stages and "poll_wait" not in stages
    marks = dict(_MARKS)
    marks["consume"] = 11.0                    # stale mark: consume < visible
    s = MessageSpan(trace_id=1, src=0, dst=1, kind="REQUEST", marks=marks)
    assert "poll_wait" not in critpath_stages(s)
    assert critpath_stages(
        MessageSpan(trace_id=1, src=0, dst=1, kind="REQUEST")) == {}


# ---------------------------------------------------------------------------
# rollups + exemplars + verdicts
# ---------------------------------------------------------------------------

def _population():
    return [
        _span(trace_id=1, kind="REQUEST"),
        _span(trace_id=2, kind="REQUEST", scale=2.0),
        _span(trace_id=3, kind="REPLY", scale=0.5),
    ]


def test_rollup_shares_sum_to_one_per_kind():
    rollup = critpath_rollup(_population())
    assert set(rollup) == {"ALL", "REQUEST", "REPLY"}
    for bucket in rollup.values():
        assert sum(cell["share"] for cell in bucket.values()) \
            == pytest.approx(1.0)
    cell = rollup["REQUEST"]["dma_wire"]
    assert cell["count"] == 2
    assert cell["total_us"] == pytest.approx(3.0 + 6.0)
    assert cell["mean_us"] == pytest.approx(4.5)
    assert cell["max_us"] == pytest.approx(6.0)
    # stage keys come out in lifecycle order
    assert list(rollup["ALL"]) == [s for s in CRIT_STAGES
                                   if s in rollup["ALL"]]


def test_rollup_by_kind_false_keeps_only_all():
    assert set(critpath_rollup(_population(), by_kind=False)) == {"ALL"}


def test_slowest_exemplars_rank_and_decompose():
    ex = slowest_exemplars(_population(), k=2)
    assert [e["trace_id"] for e in ex] == [2, 1]      # 30us, then 15us
    worst = ex[0]
    assert worst["total_us"] == pytest.approx(30.0)
    assert worst["kind"] == "REQUEST"
    assert list(worst["marks"]) == sorted(worst["marks"],
                                          key=worst["marks"].get)
    assert sum(worst["stages"].values()) == pytest.approx(30.0)


def test_exemplar_ties_break_by_trace_id():
    spans = [_span(trace_id=7), _span(trace_id=3)]
    assert [e["trace_id"] for e in slowest_exemplars(spans, k=2)] == [3, 7]


def test_bottleneck_verdict_names_dominant_stage():
    verdict = bottleneck_verdict(critpath_rollup(_population()))
    assert verdict["stage"] == "switch_hw"     # 4us is the widest slice
    assert verdict["share"] == pytest.approx(4.0 / 15.0)
    assert verdict["gauge"] is None            # no metrics offered
    assert bottleneck_verdict({}) == {"stage": None, "share": 0.0,
                                      "gauge": None}


def test_bottleneck_verdict_quotes_the_most_loaded_gauge():
    light = TimeSeries("switch.in_flight")
    heavy = TimeSeries("link1.util")
    for i in range(10):
        light.record(float(i), 1.0)
        heavy.record(float(i), 0.9)
    metrics = SimpleNamespace(series={"switch.in_flight": light,
                                      "link1.util": heavy})
    rollup = critpath_rollup([_span(queued_us=3.9)])
    verdict = bottleneck_verdict(rollup, metrics)
    assert verdict["stage"] == "switch_queue"
    # both patterns match a live series; the higher p95 wins
    assert verdict["gauge"] == "switch.in_flight"
    assert verdict["gauge_p95"] == 1.0
    assert verdict["gauge_max"] == 1.0


# ---------------------------------------------------------------------------
# attribution coverage
# ---------------------------------------------------------------------------

def test_attribution_excludes_request_handler_only():
    spans = [_span(trace_id=1, kind="REQUEST"),
             _span(trace_id=2, kind="REPLY")]
    cov = attribution_coverage(spans, measured_rtt_us=28.5)
    # the reply's lifecycle rides inside the request handler: request
    # contributes begin->handler_start (13.5), the reply all 15.0
    assert cov["request_us"] == pytest.approx(13.5)
    assert cov["reply_us"] == pytest.approx(15.0)
    assert cov["attributed_us"] == pytest.approx(28.5)
    assert cov["coverage"] == pytest.approx(1.0)
    assert attribution_coverage(spans, 0.0)["coverage"] == 0.0


def test_live_pingpong_attribution_meets_the_95_percent_floor():
    from repro.am import attach_am
    from repro.bench.pingpong import _am_pingpong
    from repro.hardware.machine import build_machine
    from repro.obs import Observatory
    from repro.sim import Simulator

    sim = Simulator()
    machine = build_machine(sim, 2, "sp-thin")
    obs = Observatory().attach(machine)
    attach_am(machine)
    rtt = _am_pingpong(machine, 1, 30)
    cov = attribution_coverage(obs, rtt)
    assert cov["coverage"] >= 0.95
