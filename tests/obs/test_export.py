"""Exporter tests: Chrome trace-event output, JSONL round trip, schemas."""

import json

import pytest

from repro.bench.pingpong import am_roundtrip_observed
from repro.obs import (
    Observatory,
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.export import SWITCH_PID, TID_PHASE
from repro.obs.schema import (
    sniff_and_validate,
    validate_bench_report,
    validate_chrome_trace,
    validate_jsonl_trace,
)


@pytest.fixture(scope="module")
def observed():
    _mean, obs = am_roundtrip_observed(words=1, iterations=20)
    obs.phase(0, "phase", "compute", 100.0, 250.0)
    return obs


class TestChromeTrace:
    def test_validates(self, observed):
        assert validate_chrome_trace(chrome_trace(observed)) == []

    def test_one_event_per_span_stage(self, observed):
        trace = chrome_trace(observed)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"
              and e.get("cat") in ("REQUEST", "REPLY")]
        # 40 spans x 8 stages
        assert len(xs) == 40 * 8

    def test_switch_stage_on_switch_process(self, observed):
        trace = chrome_trace(observed)
        sw = [e for e in trace["traceEvents"]
              if e["ph"] == "X" and e["pid"] == SWITCH_PID]
        assert sw and all(e["name"].startswith("switch:") for e in sw)
        # switch rows are keyed by destination link
        assert {e["tid"] for e in sw} == {0, 1}

    def test_phase_spans_on_phase_track(self, observed):
        trace = chrome_trace(observed)
        ph = [e for e in trace["traceEvents"]
              if e["ph"] == "X" and e["tid"] == TID_PHASE]
        assert ph == [{"name": "compute", "cat": "phase", "ph": "X",
                       "ts": 100.0, "dur": 150.0, "pid": 0,
                       "tid": TID_PHASE, "args": {"track": "phase"}}]

    def test_process_metadata_present(self, observed):
        trace = chrome_trace(observed)
        names = {(e["pid"], e["args"]["name"])
                 for e in trace["traceEvents"] if e["ph"] == "M"
                 and e["name"] == "process_name"}
        assert (0, "node 0") in names
        assert (1, "node 1") in names
        assert (SWITCH_PID, "switch") in names

    def test_events_sorted_by_ts(self, observed):
        xs = [e["ts"] for e in chrome_trace(observed)["traceEvents"]
              if e["ph"] == "X"]
        assert xs == sorted(xs)

    def test_write_is_valid_json(self, observed, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(observed, path)
        with open(path) as f:
            assert validate_chrome_trace(json.load(f)) == []


class TestJsonlRoundTrip:
    def test_lossless(self, observed, tmp_path):
        path = str(tmp_path / "dump.jsonl")
        write_jsonl(observed, path)
        meta, spans = read_jsonl(path)
        assert meta["spans"] == len(observed.spans) == len(spans)
        assert meta["phases"] == [(0, "phase", "compute", 100.0, 250.0)]
        originals = list(observed.spans.values())
        for orig, loaded in zip(originals, spans):
            assert loaded.to_dict() == orig.to_dict()

    def test_validates(self, observed, tmp_path):
        path = str(tmp_path / "dump.jsonl")
        write_jsonl(observed, path)
        assert validate_jsonl_trace(path) == []

    def test_bad_line_reported(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as f:
            f.write('{"type": "meta", "schema": "spam-trace-jsonl/1"}\n')
            f.write("not json\n")
        problems = validate_jsonl_trace(path)
        assert any("not JSON" in p for p in problems)
        assert any("no span lines" in p for p in problems)


class TestSniff:
    def test_detects_all_three_formats(self, observed, tmp_path):
        from repro.bench.benchjson import make_report, write_report

        chrome = str(tmp_path / "t.json")
        write_chrome_trace(observed, chrome)
        jsonl = str(tmp_path / "t.jsonl")
        write_jsonl(observed, jsonl)
        report = write_report(
            make_report("x", [("a", 1.0, 1.1)]), str(tmp_path))
        for path, fmt in ((chrome, "chrome-trace"), (jsonl, "jsonl"),
                          (report, "bench-report")):
            res = sniff_and_validate(path)
            assert res["format"] == fmt
            assert res["problems"] == []

    def test_non_json_rejected(self, tmp_path):
        path = str(tmp_path / "junk.txt")
        with open(path, "w") as f:
            f.write("hello\n")
        res = sniff_and_validate(path)
        assert res["format"] == "unknown" and res["problems"]


class TestBenchReport:
    def test_report_shape(self, observed):
        from repro.bench.benchjson import make_report

        report = make_report(
            "roundtrip", [("SP AM one word", 51.0, 50.95)], obs=observed)
        assert validate_bench_report(report) == []
        row = report["results"][0]
        assert row["paper"] == 51.0
        assert row["measured"] == 50.95
        assert row["dev_pct"] == pytest.approx(-0.1, abs=0.02)
        # histogram snapshot with tail percentiles rides along
        rtt = report["stats"]["histograms"]["am.rtt_us"]
        assert {"p50", "p95", "p99"} <= set(rtt)
        assert set(report["stage_summary"]) >= {"switch", "handler"}

    def test_report_round_trips_through_disk(self, tmp_path):
        from repro.bench.benchjson import make_report, write_report

        report = make_report("t", [("a", None, 2.0)])
        path = write_report(report, str(tmp_path))
        assert path.endswith("BENCH_t.json")
        with open(path) as f:
            assert json.load(f) == report

    def test_missing_results_invalid(self):
        assert validate_bench_report({"schema": "spam-bench/1",
                                      "experiment": "x"})
