"""Histogram + nearest-rank percentile tests."""

import pytest

from repro.obs.hist import Histogram, percentile


class TestPercentileFunction:
    def test_nearest_rank(self):
        vals = [10.0, 20.0, 30.0, 40.0]
        assert percentile(vals, 50) == 20.0
        assert percentile(vals, 75) == 30.0
        assert percentile(vals, 100) == 40.0
        assert percentile(vals, 0) == 10.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_p99_of_hundred(self):
        vals = list(range(1, 101))
        assert percentile(vals, 99) == 99
        assert percentile(vals, 50) == 50

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 101)


class TestHistogram:
    def test_observe_and_query(self):
        h = Histogram("rtt")
        for v in (5.0, 1.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.min() == 1.0
        assert h.max() == 5.0
        assert h.mean() == 3.0
        assert h.percentile(50) == 3.0

    def test_sorted_cache_invalidated_on_observe(self):
        h = Histogram("x")
        h.observe(10.0)
        assert h.max() == 10.0          # builds the cache
        h.observe(20.0)
        assert h.max() == 20.0          # cache must have been rebuilt

    def test_snapshot_keys(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        snap = h.snapshot()
        assert set(snap) == {"count", "min", "mean", "p50", "p95", "p99",
                             "max"}
        assert snap["count"] == 100
        assert snap["p50"] == 50.0
        assert snap["p95"] == 95.0
        assert snap["p99"] == 99.0
        assert snap["max"] == 100.0

    def test_empty_snapshot(self):
        assert Histogram("quiet").snapshot() == {"count": 0}

    def test_empty_raises_named_error(self):
        with pytest.raises(ValueError, match="'quiet' is empty"):
            Histogram("quiet").mean()
        with pytest.raises(ValueError, match="'quiet' is empty"):
            Histogram("quiet").percentile(50)

    def test_values_returns_copy(self):
        h = Histogram("x")
        h.observe(1.0)
        h.values.append(99.0)
        assert h.count == 1
