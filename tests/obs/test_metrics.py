"""The periodic gauge sampler (``Observatory.start_sampler``)."""

import pytest

from repro.am import attach_am
from repro.bench.pingpong import _am_pingpong
from repro.hardware.machine import build_machine
from repro.obs import Observatory
from repro.obs.export import chrome_trace
from repro.obs.metrics import GLOBAL_PID, SWITCH_PID, MetricsSampler
from repro.obs.schema import validate_chrome_trace
from repro.sim import Simulator


def _observed_pingpong(iterations=20, period_us=5.0, **sampler_kw):
    sim = Simulator()
    machine = build_machine(sim, 2, "sp-thin")
    obs = Observatory().attach(machine)
    attach_am(machine)
    obs.start_sampler(period_us=period_us, **sampler_kw)
    mean_rtt = _am_pingpong(machine, 1, iterations)
    return obs, machine, mean_rtt


def test_sampler_records_gauges_across_every_layer():
    obs, machine, _ = _observed_pingpong()
    m = obs.metrics
    assert m.samples_taken > 0
    names = set(m.series)
    # scheduler + switch + per-link + per-node adapter + window + rates
    assert "sched.live_pending" in names
    assert "switch.in_flight" in names
    assert {"link0.util", "link1.util"} <= names
    for nid in (0, 1):
        assert {f"n{nid}.send_fifo", f"n{nid}.recv_fifo",
                f"n{nid}.recv_visible", f"n{nid}.tx_util",
                f"n{nid}.win_inflight", f"n{nid}.win_credit"} <= names
    assert "rate.tx_packets_per_s" in names
    # unconditional gauges get one sample per tick; conditional ones
    # (window state appears once AM peers materialize) never exceed it
    assert len(m.series["sched.live_pending"]) == m.samples_taken
    assert all(len(s) <= m.samples_taken for s in m.series.values())


def test_sampler_ticks_are_period_spaced():
    obs, _, _ = _observed_pingpong(period_us=7.0)
    times = [t for t, _ in obs.metrics.series["sched.live_pending"].samples]
    assert times[0] == pytest.approx(7.0)
    deltas = [b - a for a, b in zip(times, times[1:])]
    assert all(d == pytest.approx(7.0) for d in deltas)


def test_counter_track_pids_route_to_the_right_process_rows():
    obs, _, _ = _observed_pingpong()
    pid_of = obs.metrics.pid_of
    assert pid_of["sched.live_pending"] == GLOBAL_PID
    assert pid_of["rate.tx_packets_per_s"] == GLOBAL_PID
    assert pid_of["switch.in_flight"] == SWITCH_PID
    assert pid_of["link1.util"] == SWITCH_PID
    assert pid_of["n0.send_fifo"] == 0
    assert pid_of["n1.tx_util"] == 1


def test_utilization_gauges_see_traffic():
    obs, _, _ = _observed_pingpong(iterations=40)
    # the pingpong saturates neither side, but both adapters and both
    # destination links must show nonzero utilization in some period
    assert obs.metrics.series["n0.tx_util"].max() > 0.0
    assert obs.metrics.series["link1.util"].max() > 0.0
    assert obs.metrics.series["rate.tx_packets_per_s"].max() > 0.0


def test_stop_halts_sampling_and_restart_resumes():
    obs, machine, _ = _observed_pingpong()
    m = obs.metrics
    assert m.running
    m.stop()
    assert not m.running
    taken = m.samples_taken
    _am_pingpong(machine, 1, 5)          # more traffic, sampler off
    assert m.samples_taken == taken
    m.start()
    _am_pingpong(machine, 1, 5)
    assert m.samples_taken > taken


def test_max_samples_valve_stops_the_timer():
    obs, _, _ = _observed_pingpong(iterations=40, period_us=2.0,
                                   max_samples=3)
    assert obs.metrics.samples_taken == 3
    assert not obs.metrics.running


def test_capacity_bounds_series_and_reports_drops():
    obs, _, _ = _observed_pingpong(iterations=40, period_us=1.0, capacity=4)
    m = obs.metrics
    assert m.samples_taken > 4
    live = m.series["sched.live_pending"]
    assert len(live) == 4
    assert live.dropped_samples == m.samples_taken - 4
    assert m.snapshot()["sched.live_pending"]["dropped_samples"] > 0


def test_start_sampler_is_idempotent_while_running():
    obs, machine, _ = _observed_pingpong()
    assert obs.start_sampler() is obs.metrics
    # once stopped, a new start_sampler builds a fresh sampler
    obs.metrics.stop()
    old = obs.metrics
    assert obs.start_sampler(period_us=9.0) is not old
    assert obs.metrics.period_us == 9.0
    obs.metrics.stop()


def test_start_sampler_requires_a_machine():
    with pytest.raises(ValueError):
        Observatory().start_sampler()


def test_invalid_period_rejected():
    sim = Simulator()
    machine = build_machine(sim, 2, "sp-thin")
    obs = Observatory().attach(machine)
    with pytest.raises(ValueError):
        MetricsSampler(obs, machine, period_us=0.0)


def test_observatory_snapshot_carries_the_metrics_section():
    obs, _, _ = _observed_pingpong()
    snap = obs.snapshot()
    assert snap["metrics"]["period_us"] == 5.0
    assert snap["metrics"]["samples_taken"] == obs.metrics.samples_taken
    assert "sched.live_pending" in snap["metrics"]["series"]
    # without a sampler there is no metrics section at all
    assert "metrics" not in Observatory().snapshot()


def test_chrome_trace_gains_counter_tracks():
    obs, _, _ = _observed_pingpong()
    trace = chrome_trace(obs)
    assert validate_chrome_trace(trace) == []
    counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    assert counters
    by_name = {e["name"] for e in counters}
    assert "switch.in_flight" in by_name
    sample = next(e for e in counters if e["name"] == "switch.in_flight")
    assert sample["pid"] == SWITCH_PID
    # args carry the short name (text after the last dot) for the viewer
    assert set(sample["args"]) == {"in_flight"}
    assert trace["otherData"]["counter_series"] == len(obs.metrics.series)
    assert trace["otherData"]["sampler_period_us"] == 5.0


def test_unobserved_run_pays_no_busy_time_accounting():
    sim = Simulator()
    machine = build_machine(sim, 2, "sp-thin")
    attach_am(machine)
    _am_pingpong(machine, 1, 10)
    assert all(n.adapter.tx_busy_us == 0.0 for n in machine.nodes)
    assert all(v == 0.0 for v in machine.switch.link_busy_us.values())


def test_observed_run_accumulates_busy_time_even_without_sampler():
    sim = Simulator()
    machine = build_machine(sim, 2, "sp-thin")
    obs = Observatory().attach(machine)
    attach_am(machine)
    _am_pingpong(machine, 1, 10)
    assert obs.metrics is None
    assert machine.nodes[0].adapter.tx_busy_us > 0.0
    assert machine.switch.link_busy_us[1] > 0.0
