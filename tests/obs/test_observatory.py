"""Observatory end-to-end: span correlation, stage attribution, snapshots.

The headline check is the acceptance criterion from the observability
issue: reconstructing the AM one-word round trip from span marks must land
within 5% of the directly measured mean (paper value: 51.0 us).
"""

import pytest

from repro.am import attach_spam
from repro.bench.pingpong import am_roundtrip_observed, stage_attribution
from repro.hardware import build_sp_machine
from repro.hardware.packet import PacketKind
from repro.obs import STAGE_NAMES, MessageSpan, Observatory
from repro.sim import Simulator


@pytest.fixture(scope="module")
def observed_roundtrip():
    return am_roundtrip_observed(words=1, iterations=50)


class TestStageAttribution:
    def test_stage_sum_within_5pct_of_measured(self, observed_roundtrip):
        mean_rtt, obs = observed_roundtrip
        att = stage_attribution(obs)
        assert att["stage_sum_us"] == pytest.approx(mean_rtt, rel=0.05)

    def test_roundtrip_matches_paper(self, observed_roundtrip):
        mean_rtt, _obs = observed_roundtrip
        assert mean_rtt == pytest.approx(51.0, rel=0.05)

    def test_every_span_fully_marked(self, observed_roundtrip):
        _mean, obs = observed_roundtrip
        for span in obs.spans.values():
            durations = span.stage_durations()
            assert set(durations) == set(STAGE_NAMES), span
            assert all(d >= 0 for d in durations.values())

    def test_request_and_reply_per_iteration(self, observed_roundtrip):
        _mean, obs = observed_roundtrip
        assert len(obs.spans_by_kind("REQUEST")) == 50
        assert len(obs.spans_by_kind("REPLY")) == 50

    def test_rtt_histogram_populated(self, observed_roundtrip):
        mean_rtt, obs = observed_roundtrip
        snap = obs.hist("am.rtt_us").snapshot()
        assert snap["count"] == 50
        assert snap["mean"] == pytest.approx(mean_rtt)
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]

    def test_handler_and_occupancy_histograms(self, observed_roundtrip):
        _mean, obs = observed_roundtrip
        assert obs.hist("am.handler_us").count == 100  # 50 req + 50 rep
        assert obs.hist("am.window_occupancy").count > 0

    def test_stage_summary_covers_all_stages(self, observed_roundtrip):
        _mean, obs = observed_roundtrip
        summary = obs.stage_summary()
        assert set(summary) == set(STAGE_NAMES)
        assert all(s["count"] == 100 for s in summary.values())


class TestSnapshot:
    def test_snapshot_merges_layer_registries(self, observed_roundtrip):
        _mean, obs = observed_roundtrip
        snap = obs.snapshot()
        assert snap["spans"]["recorded"] == 100
        assert snap["spans"]["dropped"] == 0
        # counters from two different layers, fully-prefixed names
        assert snap["counters"]["am[0].requests_sent"] == 50
        assert any(k.startswith("tb2[") for k in snap["counters"])

    def test_snapshot_is_json_serializable(self, observed_roundtrip):
        import json

        _mean, obs = observed_roundtrip
        json.dumps(obs.snapshot())

    def test_snapshot_includes_series(self, observed_roundtrip):
        _mean, obs = observed_roundtrip
        snap = obs.snapshot()
        occ = snap["series"]["am[0].window_occupancy"]
        assert occ["count"] > 0


class TestSpanCollection:
    def test_span_limit_counts_drops(self):
        obs = Observatory(span_limit=2)

        class Pkt:
            def __init__(self):
                self.trace_id = 0
                self.src, self.dst, self.kind = 0, 1, "X"

        spans = [obs.begin_message(Pkt(), float(i)) for i in range(5)]
        assert sum(s is not None for s in spans) == 2
        assert obs.dropped_spans == 3

    def test_begin_is_idempotent(self):
        obs = Observatory()

        class Pkt:
            trace_id = 0
            src, dst, kind = 0, 1, "X"

        p = Pkt()
        first = obs.begin_message(p, 1.0)
        again = obs.begin_message(p, 99.0)
        assert first is again
        assert first.marks["begin"] == 1.0

    def test_slotless_packet_ignored(self):
        obs = Observatory()
        assert obs.begin_message(object(), 0.0) is None
        assert len(obs.spans) == 0

    def test_retransmit_counted_not_respanned(self):
        """A dropped packet re-enters the TX path under the same span."""
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        obs = Observatory().attach(m)
        dropped = {"n": 0}

        def drop_first_request(pkt):
            if pkt.kind == PacketKind.REQUEST and dropped["n"] == 0:
                dropped["n"] += 1
                return True
            return False

        m.switch.fault_injector = drop_first_request
        am0, am1 = attach_spam(m)
        got = [0]

        def handler(token, x):
            got[0] += 1

        def sender():
            yield from am0.request_1(1, handler, 5)
            while m.node(1).am.stats.get("handlers_run") == 0:
                yield from am0._wait_progress()

        def receiver():
            while m.node(1).am.stats.get("handlers_run") == 0:
                yield from am1._wait_progress()

        p = sim.spawn(sender())
        q = sim.spawn(receiver())
        sim.run_until_processes_done([p, q], limit=1e8)
        requests = obs.spans_by_kind("REQUEST")
        assert len(requests) == 1
        assert requests[0].drops == 1
        assert requests[0].retransmits >= 1

    def test_phase_spans_recorded(self):
        obs = Observatory()
        obs.phase(0, "phase", "compute", 10.0, 30.0)
        assert obs.phase_spans == [(0, "phase", "compute", 10.0, 30.0)]


class TestGenericMachines:
    def test_logp_machine_spans(self):
        """Table-4 peers trace through the generic NIC path too."""
        mean, obs = am_roundtrip_observed(words=1, iterations=10,
                                          machine_name="cm5")
        reqs = obs.spans_by_kind("request")
        assert len(reqs) == 10
        # LogP path has no separate switch/FIFO stages but must still
        # tile begin -> handler via the marks it does deposit
        for s in reqs:
            assert "begin" in s.marks and "handler_end" in s.marks
            assert s.total_us() > 0
