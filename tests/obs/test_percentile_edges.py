"""Regression: one nearest-rank rule for every percentile query.

``Histogram.percentile`` used to carry its own selection arithmetic next
to the module-level :func:`repro.obs.hist.percentile`; both now delegate
to :func:`percentile_sorted`, and these edge cases pin the shared rule.
"""

import pytest

from repro.obs.hist import Histogram, percentile, percentile_sorted


class TestEdgeCases:
    def test_p0_is_min_and_p100_is_max(self):
        vs = [5.0, 1.0, 9.0, 3.0]
        assert percentile(vs, 0) == 1.0
        assert percentile(vs, 100) == 9.0

    def test_single_sample_answers_every_p(self):
        for p in (0, 1, 50, 99, 100):
            assert percentile([7.25], p) == 7.25

    def test_nearest_rank_on_small_sets(self):
        vs = [10.0, 20.0, 30.0, 40.0]
        assert percentile(vs, 25) == 10.0   # ceil(.25*4)=1 -> first
        assert percentile(vs, 26) == 20.0
        assert percentile(vs, 50) == 20.0
        assert percentile(vs, 75) == 30.0
        assert percentile(vs, 76) == 40.0

    def test_out_of_range_p_rejected(self):
        for p in (-0.1, 100.1):
            with pytest.raises(ValueError):
                percentile([1.0], p)
            with pytest.raises(ValueError):
                percentile_sorted([1.0], p)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile_sorted([], 50)


class TestHistogramDelegation:
    def test_histogram_matches_module_function_exactly(self):
        h = Histogram("t")
        vs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for v in vs:
            h.observe(v)
        for p in (0, 10, 25, 50, 75, 90, 95, 99, 100):
            assert h.percentile(p) == percentile(vs, p)

    def test_histogram_single_sample(self):
        h = Histogram("one")
        h.observe(42.0)
        assert h.percentile(0) == h.percentile(100) == 42.0

    def test_histogram_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram("empty").percentile(50)
