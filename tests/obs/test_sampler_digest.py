"""The periodic gauge sampler must be digest-neutral.

Its timers live on the unsequenced observer lane (negative seqs), so an
identical soak with the sampler on and off must retire the *sequenced*
events in byte-identical order at identical times — that is what lets
``spam-bench soak`` run the sampler by default without perturbing the
event-order digests the determinism gates compare.
"""

import pytest

from repro.bench.perf import _FFDigestRecorder
from repro.faults import run_soak


def _soak_digest(sample_period_us, xfer_mode):
    rec = _FFDigestRecorder()
    res = run_soak(seed=13, loss=0.01, nodes=2, pingpong=8,
                   compare_clean=False, sim_check=rec,
                   sample_period_us=sample_period_us, xfer_mode=xfer_mode)
    assert not res.violations
    return rec.hexdigest(), res


@pytest.mark.parametrize("xfer_mode", ["eager", "rendezvous"])
def test_sampler_on_off_digests_identical(xfer_mode):
    d_off, r_off = _soak_digest(None, xfer_mode)
    d_on, r_on = _soak_digest(50.0, xfer_mode)
    assert d_on == d_off
    assert r_on.elapsed_us == r_off.elapsed_us
    # and the sampler really ran: its ticks add (unsequenced) events
    sim_on = r_on.obs.machine.sim
    sim_off = r_off.obs.machine.sim
    assert sim_on.events_executed > sim_off.events_executed
