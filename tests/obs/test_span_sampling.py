"""Span sampling: 1-in-N lifecycle tracing (``Observatory(sample_every=N)``).

Unsampled packets are stamped ``trace_id = -1`` so every later hook
(``mark_packet``, ``packet_dropped``) short-circuits on the span-table
miss — the per-packet tracing cost for a sampled-out message is one dict
miss, not a span allocation.
"""

import pytest

from repro.hardware.packet import Packet, PacketKind
from repro.obs import Observatory


def _pkt(seq=0):
    return Packet(src=0, dst=1, kind=PacketKind.REQUEST, seq=seq)


def test_default_samples_every_message():
    obs = Observatory()
    spans = [obs.begin_message(_pkt(i), float(i)) for i in range(5)]
    assert all(s is not None for s in spans)
    assert obs.sampled_out == 0


def test_one_in_n_sampling_keeps_first_of_every_n():
    obs = Observatory(sample_every=3)
    spans = [obs.begin_message(_pkt(i), float(i)) for i in range(9)]
    kept = [s is not None for s in spans]
    assert kept == [True, False, False] * 3
    assert len(obs.spans) == 3
    assert obs.sampled_out == 6


def test_sampled_out_packet_short_circuits_later_hooks():
    obs = Observatory(sample_every=2)
    traced, skipped = _pkt(0), _pkt(1)
    assert obs.begin_message(traced, 0.0) is not None
    assert obs.begin_message(skipped, 1.0) is None
    assert skipped.trace_id == -1
    # later hooks are span-table misses, never new spans
    assert obs.mark_packet(skipped, "visible", 2.0) is None
    obs.packet_dropped(skipped, "overflow")
    assert len(obs.spans) == 1
    # and a second begin (retransmission path) stays sampled-out without
    # advancing the sampling clock
    assert obs.begin_message(skipped, 3.0) is None
    assert obs.sampled_out == 1


def test_traced_packet_keeps_span_across_retransmission():
    obs = Observatory(sample_every=2)
    pkt = _pkt(0)
    span = obs.begin_message(pkt, 0.0)
    assert obs.begin_message(pkt, 5.0) is span  # idempotent re-begin


def test_snapshot_reports_sampling():
    obs = Observatory(sample_every=4)
    for i in range(8):
        obs.begin_message(_pkt(i), float(i))
    snap = obs.snapshot()
    assert snap["spans"]["sample_every"] == 4
    assert snap["spans"]["sampled_out"] == 6


def test_invalid_sample_every_rejected():
    with pytest.raises(ValueError):
        Observatory(sample_every=0)
