"""Span-sampling edge cases: ``sample_every > 1`` meeting fault-event
reconciliation and ``stage_summary()``, and the ``span_limit`` safety
valve (``dropped_spans``) vs. sampling (``sampled_out``).

The two skip paths are deliberately distinct counters: ``sampled_out``
is the 1-in-N policy working as designed, ``dropped_spans`` is the
overload valve firing — chaos campaigns treat only the latter as a
sign the run outgrew its tracing budget.
"""

from repro.hardware.packet import Packet, PacketKind
from repro.obs import Observatory


def _pkt(seq=0, kind=PacketKind.REQUEST):
    return Packet(src=0, dst=1, kind=kind, seq=seq)


# ---------------------------------------------------------------------------
# sampling x fault-event reconciliation
# ---------------------------------------------------------------------------

def test_drop_on_sampled_out_packet_records_anonymous_fault():
    obs = Observatory(sample_every=2)
    traced, skipped = _pkt(0), _pkt(1)
    assert obs.begin_message(traced, 0.0) is not None
    assert obs.begin_message(skipped, 1.0) is None

    obs.packet_dropped(skipped, "fabric")
    # the event is still recorded (chaos accounting needs the total),
    # but it carries trace_id -1: reconciliation can never pin it to a
    # span, which is exactly why repro.faults.soak requires N == 1
    assert obs.fault_events[-1]["trace_id"] == -1
    assert all(s.drops == 0 for s in obs.spans.values())

    obs.packet_dropped(traced, "fabric")
    span = obs.spans[traced.trace_id]
    assert span.drops == 1
    assert obs.fault_events[-1]["trace_id"] == traced.trace_id


def test_injected_fault_on_sampled_out_packet_is_unreconcilable():
    obs = Observatory(sample_every=2)
    obs.begin_message(_pkt(0), 0.0)
    skipped = _pkt(1)
    obs.begin_message(skipped, 1.0)

    obs.fault(skipped, "fabric_loss", 2.0, "injected")
    ev = obs.fault_events[-1]
    assert ev["kind"] == "fabric_loss"
    assert ev["trace_id"] == -1
    # reconciliation pass: events with a positive trace_id map onto the
    # span table, sampled-out ones do not
    matched = [e for e in obs.fault_events if e["trace_id"] in obs.spans]
    assert matched == []


def test_full_sampling_reconciles_every_fault():
    obs = Observatory()          # sample_every=1: the soak contract
    pkts = [_pkt(i) for i in range(4)]
    for i, p in enumerate(pkts):
        obs.begin_message(p, float(i))
        obs.fault(p, "fabric_loss", float(i), "injected")
    assert obs.sampled_out == 0
    assert all(e["trace_id"] in obs.spans for e in obs.fault_events)


# ---------------------------------------------------------------------------
# sampling x stage_summary
# ---------------------------------------------------------------------------

def test_stage_summary_aggregates_only_traced_spans():
    obs = Observatory(sample_every=3)
    for i in range(9):
        span = obs.begin_message(_pkt(i), float(i))
        if span is not None:
            span.marks["stage"] = float(i) + 0.5
            span.marks["dma_start"] = float(i) + 2.0
    summary = obs.stage_summary()
    # 3 of 9 messages traced; sampled-out ones contribute nothing
    assert summary["send_sw"]["count"] == 3
    assert summary["tx_queue"]["count"] == 3
    assert summary["send_sw"]["mean"] == 0.5
    assert "switch" not in summary     # no span has those marks


def test_stage_summary_empty_when_everything_sampled_out():
    obs = Observatory(sample_every=2)
    obs.begin_message(_pkt(0), 0.0)          # traced, but no stage marks
    obs.begin_message(_pkt(1), 1.0)          # sampled out
    assert obs.stage_summary() == {}


# ---------------------------------------------------------------------------
# span_limit valve vs. sampling
# ---------------------------------------------------------------------------

def test_span_limit_and_sampling_account_separately():
    obs = Observatory(span_limit=2, sample_every=2)
    for i in range(8):
        obs.begin_message(_pkt(i), float(i))
    # 8 arrivals: sampling passes every other one (4), the limit admits
    # the first 2 of those and drops the rest
    assert len(obs.spans) == 2
    assert obs.sampled_out == 4
    assert obs.dropped_spans == 2

    snap = obs.snapshot()["spans"]
    assert snap["recorded"] == 2
    assert snap["dropped"] == 2
    assert snap["sampled_out"] == 4
    assert snap["sample_every"] == 2


def test_limit_dropped_packet_keeps_no_trace_id():
    obs = Observatory(span_limit=1)
    kept, dropped = _pkt(0), _pkt(1)
    assert obs.begin_message(kept, 0.0) is not None
    assert obs.begin_message(dropped, 1.0) is None
    # the valve refuses *before* stamping: the packet stays anonymous
    # (unlike sampling, which stamps -1 to short-circuit later hooks)
    assert dropped.trace_id == 0
    assert obs.mark_packet(dropped, "visible", 2.0) is None


def test_fault_event_buffer_shares_the_safety_valve():
    obs = Observatory(span_limit=1)
    p = _pkt(0)
    obs.begin_message(p, 0.0)
    obs.fault(p, "fabric_loss", 1.0, "first")
    before = obs.dropped_spans
    obs.fault(p, "fabric_loss", 2.0, "second")   # buffer full
    assert len(obs.fault_events) == 1
    assert obs.dropped_spans == before + 1
