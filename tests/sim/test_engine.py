"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    Delay,
    DeadlockError,
    Simulator,
    SimTimeoutError,
    WaitEvent,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, lambda: order.append("b"))
    sim.schedule(2.0, lambda: order.append("a"))
    sim.schedule(9.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(3.0, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(4.0, lambda: sim.at(10.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [10.0]


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append((sim.now, n))
        if n < 3:
            sim.schedule(1.5, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert hits == [(0.0, 0), (1.5, 1), (3.0, 2), (4.5, 3)]


def test_run_until_stops_before_future_events():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(5))
    sim.schedule(15.0, lambda: seen.append(15))
    sim.run(until=10.0)
    assert seen == [5]
    assert sim.now == 10.0
    sim.run()
    assert seen == [5, 15]


def test_run_until_inclusive_boundary():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, lambda: seen.append(1))
    sim.run(until=10.0)
    assert seen == [1]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimTimeoutError):
        sim.run(max_events=100)


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 7


class TestProcesses:
    def test_delay_advances_process_clock(self):
        sim = Simulator()

        def prog():
            yield Delay(3.0)
            yield Delay(4.0)
            return sim.now

        p = sim.spawn(prog())
        sim.run()
        assert p.finished
        assert p.result == 7.0

    def test_zero_delay_is_allowed(self):
        sim = Simulator()

        def prog():
            yield Delay(0.0)
            return "done"

        p = sim.spawn(prog())
        sim.run()
        assert p.result == "done"

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def prog(name, step):
            for _ in range(3):
                yield Delay(step)
                trace.append((sim.now, name))

        sim.spawn(prog("a", 2.0))
        sim.spawn(prog("b", 3.0))
        sim.run()
        assert trace == [
            (2.0, "a"),
            (3.0, "b"),
            (4.0, "a"),
            # at t=6 both are due; b's wakeup was scheduled first (at t=3)
            # so FIFO tie-breaking runs it first
            (6.0, "b"),
            (6.0, "a"),
            (9.0, "b"),
        ]

    def test_wait_event_blocks_until_succeed(self):
        sim = Simulator()
        ev = sim.event("go")
        got = []

        def waiter():
            val = yield WaitEvent(ev)
            got.append((sim.now, val))

        sim.spawn(waiter())
        sim.schedule(12.0, ev.succeed, "payload")
        sim.run()
        assert got == [(12.0, "payload")]

    def test_wait_on_already_fired_event_resumes_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(99)
        got = []

        def waiter():
            yield Delay(5.0)
            val = yield WaitEvent(ev)
            got.append((sim.now, val))

        sim.spawn(waiter())
        sim.run()
        assert got == [(5.0, 99)]

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        ev = sim.event()
        woke = []

        def waiter(i):
            yield WaitEvent(ev)
            woke.append(i)

        for i in range(4):
            sim.spawn(waiter(i))
        sim.schedule(1.0, ev.succeed)
        sim.run()
        assert woke == [0, 1, 2, 3]

    def test_event_cannot_fire_twice(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_yield_from_composition(self):
        sim = Simulator()

        def inner():
            yield Delay(2.0)
            return 21

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        p = sim.spawn(outer())
        sim.run()
        assert p.result == 42
        assert sim.now == 4.0

    def test_deadlock_detection(self):
        sim = Simulator()
        ev = sim.event("never")

        def stuck():
            yield WaitEvent(ev)

        sim.spawn(stuck())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_process_exception_propagates(self):
        sim = Simulator()

        def bad():
            yield Delay(1.0)
            raise ValueError("boom")

        sim.spawn(bad())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_done_event_fires_with_return_value(self):
        sim = Simulator()

        def child():
            yield Delay(3.0)
            return "result"

        def parent():
            c = sim.spawn(child())
            val = yield WaitEvent(c.done)
            return val

        p = sim.spawn(parent())
        sim.run()
        assert p.result == "result"

    def test_run_until_processes_done(self):
        sim = Simulator()

        def background():
            while True:
                yield Delay(1.0)

        def measured():
            yield Delay(10.0)

        sim.spawn(background(), name="bg")
        m = sim.spawn(measured(), name="m")
        sim.run_until_processes_done([m], limit=100.0)
        assert m.finished
        assert sim.now == 10.0

    def test_run_until_processes_done_time_limit(self):
        sim = Simulator()

        def slow():
            yield Delay(1000.0)

        p = sim.spawn(slow())
        with pytest.raises(SimTimeoutError):
            sim.run_until_processes_done([p], limit=10.0)


class TestDeterminism:
    def test_identical_runs_identical_timelines(self):
        def build():
            sim = Simulator()
            trace = []

            def prog(name):
                for i in range(5):
                    yield Delay(1.0 + 0.1 * i)
                    trace.append((round(sim.now, 6), name))

            for n in ("x", "y", "z"):
                sim.spawn(prog(n))
            sim.run()
            return trace

        assert build() == build()
