"""Tests for the multiprocessing shard-worker backend (phase 2).

The contract: ``ShardedSimulator(workers=P)`` executes
``run_until_processes_done`` bit-identically to single-process execution
— same event-order digest, same final clock, same executed/stale/round
counters — and a worker that dies or hangs mid-round surfaces as a clean
error naming the round and shard range instead of a deadlocked barrier.
"""

import hashlib
import os
import random
import struct
import time

import pytest

from repro.am import attach_spam
from repro.faults.injector import install_faults
from repro.faults.plan import FaultPlan
from repro.hardware.machine import build_sp_machine
from repro.sim import Delay, ShardedSimulator, Simulator, Timeout
from repro.sim.errors import SimulationError
from repro.sim.parallel import _shard_spans
from repro.sim.primitives import TIMED_OUT


class DigestRecorder:
    """sim.check hook hashing the executed event order (unsequenced
    observer entries, ``seq < 0``, are digest-neutral)."""

    def __init__(self):
        self._h = hashlib.blake2b(digest_size=16)

    def on_execute(self, entry):
        if entry[1] < 0:
            return
        self._h.update(struct.pack("<dq", entry[0], entry[1]))
        self._h.update(getattr(entry[2], "__qualname__", "?").encode())

    def on_stale(self, entry):
        pass

    def on_cancel(self, entry):
        pass

    def digest(self):
        return self._h.hexdigest()


def _counters(sim):
    return (sim.now, sim.events_executed, sim.stale_events_skipped,
            getattr(sim, "rounds", None))


# ---------------------------------------------------------------------------
# synthetic timer/cancel workload (no machine, pure engine)
# ---------------------------------------------------------------------------


def _run_timeout_races(workers, seed, shards=4, nprocs=25):
    """Shard-clean Timeout-race workload: all randomness is drawn before
    the run (a shared RNG mutated from worker callbacks would change the
    simulation itself, not just its schedule)."""
    sim = ShardedSimulator(workers=workers, worker_watchdog_s=30.0)
    sim.configure_shards(shards, 0.5)
    rng = random.Random(seed)
    plans = [(rng.random() * 400.0, 1e-9 + rng.random() * 400.0,
              rng.random() < 0.6,
              rng.choice((0.0, 3.0, 750.0, 12_000.0)))
             for _ in range(nprocs)]

    def waiter(i):
        fire_at, timeout, do_fire, post = plans[i]
        ev = sim.event(f"ev{i}")
        if do_fire:
            sim.schedule(fire_at, ev.succeed, i)
        value = yield Timeout(ev, timeout)
        assert (value is TIMED_OUT) == (not do_fire or fire_at > timeout)
        yield Delay(post)

    procs = [sim.spawn(waiter(i), name=f"w{i}", shard=i % shards)
             for i in range(nprocs)]
    sim.run_until_processes_done(procs, limit=1e9)
    return _counters(sim)


@pytest.mark.parametrize("seed", [0, 7, 99, 12345])
def test_timeout_races_identical_across_worker_counts(seed):
    ref = _run_timeout_races(1, seed)
    for workers in (2, 3, 4):
        assert _run_timeout_races(workers, seed) == ref


def _one_delay():
    yield Delay(2.0)


def test_workers_clamp_to_shard_count():
    # more workers than shards degrades to shard-count workers; a
    # 1-shard sim falls back to sequential execution entirely
    ref = _run_timeout_races(1, 5)
    assert _run_timeout_races(16, 5) == ref
    sim = ShardedSimulator(workers=4)
    sim.configure_shards(1, 0.5)
    fired = []
    p = sim.spawn(_one_delay(), name="noop")
    sim.schedule(1.0, fired.append, "x")
    sim.run_until_processes_done([p])
    assert fired == ["x"]
    assert sim.workers == 4  # knob untouched by the fallback


# ---------------------------------------------------------------------------
# full-machine AM workload digests (lossy fabric, real switch replay)
# ---------------------------------------------------------------------------


def _lossy_am_run(engine, seed, nodes=4, rounds=25):
    if engine == "heap":
        sim = Simulator(scheduler="heap")
    elif engine == "sharded":
        sim = ShardedSimulator()
    else:
        sim = ShardedSimulator(workers=engine, worker_watchdog_s=60.0)
    machine = build_sp_machine(sim, nodes)
    install_faults(machine, FaultPlan.loss(seed=seed, rate=0.05))
    ams = attach_spam(machine)
    rec = DigestRecorder()
    sim.check = rec

    def handler(token, a, b):
        pass

    def prog(i):
        for r in range(rounds):
            yield from ams[i].request_2((i + 1) % nodes, handler, r, i)

    procs = [sim.spawn(prog(i), name=f"p{i}", shard=i)
             for i in range(nodes)]
    sim.run_until_processes_done(procs, limit=1e9)
    return (rec.digest(),) + _counters(sim)


@pytest.mark.parametrize("seed", [3, 17])
def test_lossy_am_digest_identical_across_backends(seed):
    ref = _lossy_am_run("sharded", seed)
    assert _lossy_am_run("heap", seed)[:4] == ref[:4]  # no rounds on heap
    assert _lossy_am_run(2, seed) == ref
    assert _lossy_am_run(4, seed) == ref


# ---------------------------------------------------------------------------
# finalizer payloads
# ---------------------------------------------------------------------------


def _echo_span(lo, hi):
    return ("span", lo, hi, os.getpid())


def test_worker_finalize_ships_per_worker_payloads():
    sim = ShardedSimulator(workers=2)
    sim.configure_shards(4, 0.5)
    sim.worker_finalize = _echo_span

    def prog(i):
        yield Delay(float(i + 1))

    procs = [sim.spawn(prog(i), name=f"p{i}", shard=i) for i in range(4)]
    sim.run_until_processes_done(procs)
    assert sim.worker_results is not None
    spans = [(r[1], r[2]) for r in sim.worker_results]
    assert spans == _shard_spans(4, 2)
    # finalizers ran in the workers, not the parent
    assert all(r[3] != os.getpid() for r in sim.worker_results)


# ---------------------------------------------------------------------------
# worker-failure surfacing (satellite: no deadlocked barriers)
# ---------------------------------------------------------------------------


def _suicide():
    os._exit(17)


def _hang():
    time.sleep(60.0)


def _boom():
    raise ValueError("injected worker failure")


def _spin(sim, shard):
    # keep a live event stream in another shard so the run has rounds
    def prog():
        for _ in range(50):
            yield Delay(1.0)
    return sim.spawn(prog(), name=f"spin{shard}", shard=shard)


def test_worker_death_names_round_and_shards():
    sim = ShardedSimulator(workers=2, worker_watchdog_s=30.0)
    sim.configure_shards(4, 0.5)
    procs = [_spin(sim, 0), _spin(sim, 3)]
    sim.schedule_into(3, 5.0, _suicide)
    with pytest.raises(SimulationError) as ei:
        sim.run_until_processes_done(procs, limit=1e6)
    msg = str(ei.value)
    assert "worker 1" in msg and "shards 2..3" in msg
    assert "round" in msg and "died" in msg


def test_worker_hang_trips_watchdog():
    sim = ShardedSimulator(workers=2, worker_watchdog_s=1.0)
    sim.configure_shards(4, 0.5)
    procs = [_spin(sim, 0), _spin(sim, 3)]
    sim.schedule_into(3, 5.0, _hang)
    with pytest.raises(SimulationError) as ei:
        sim.run_until_processes_done(procs, limit=1e6)
    msg = str(ei.value)
    assert "worker 1" in msg and "shards 2..3" in msg
    assert "unresponsive" in msg and "watchdog" in msg


def test_worker_exception_carries_traceback():
    sim = ShardedSimulator(workers=2, worker_watchdog_s=30.0)
    sim.configure_shards(4, 0.5)
    procs = [_spin(sim, 0), _spin(sim, 3)]
    sim.schedule_into(3, 5.0, _boom)
    with pytest.raises(SimulationError) as ei:
        sim.run_until_processes_done(procs, limit=1e6)
    msg = str(ei.value)
    assert "worker 1" in msg and "failed" in msg
    assert "injected worker failure" in msg


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def test_shard_spans_cover_contiguously():
    for n, p in [(4, 2), (5, 2), (7, 3), (1024, 4), (3, 3)]:
        spans = _shard_spans(n, p)
        assert spans[0][0] == 0 and spans[-1][1] == n
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) - min(sizes) <= 1


def test_workers_validation():
    with pytest.raises(ValueError):
        ShardedSimulator(workers=0)
    sim = ShardedSimulator(workers=2)
    # unconfigured (infinite lookahead) parallel run is rejected
    p = sim.spawn(_one_delay(), name="p")
    with pytest.raises(RuntimeError):
        sim.run_until_processes_done([p])
