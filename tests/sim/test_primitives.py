"""Tests for Delay/Event/Timeout primitives and the stats registry."""

import pytest

from repro.sim import TIMED_OUT, Delay, Simulator, Timeout
from repro.sim.stats import StatRegistry


class TestDelay:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Delay(-0.1)

    def test_duration_stored(self):
        assert Delay(2.5).duration == 2.5


class TestTimeout:
    def test_event_first(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def prog():
            val = yield Timeout(ev, 100.0)
            got.append((sim.now, val))

        sim.spawn(prog())
        sim.schedule(5.0, ev.succeed, "early")
        sim.run()
        assert got == [(5.0, "early")]

    def test_timeout_first(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def prog():
            val = yield Timeout(ev, 10.0)
            got.append((sim.now, val))

        sim.spawn(prog())
        sim.run(check_deadlock=False)
        assert got == [(10.0, TIMED_OUT)]

    def test_no_double_resume_when_both_fire(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def prog():
            val = yield Timeout(ev, 10.0)
            got.append(val)
            yield Delay(50.0)  # survive past the stale timeout callback

        sim.spawn(prog())
        sim.schedule(10.0, ev.succeed, "same-instant")
        sim.run()
        assert len(got) == 1


class TestEventValue:
    def test_value_before_fire_raises(self):
        sim = Simulator()
        ev = sim.event("pending")
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_value_after_fire(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed({"k": 1})
        assert ev.value == {"k": 1}
        assert ev.triggered


class TestStats:
    def test_counter_accumulates(self):
        reg = StatRegistry("x.")
        reg.count("hits")
        reg.count("hits", 4)
        assert reg.get("hits") == 5

    def test_untouched_counter_reads_zero(self):
        assert StatRegistry().get("nothing") == 0

    def test_snapshot_sorted(self):
        reg = StatRegistry()
        reg.count("b")
        reg.count("a", 2)
        assert list(reg.snapshot().items()) == [("a", 2), ("b", 1)]

    def test_series(self):
        reg = StatRegistry()
        s = reg.series("depth")
        s.record(0.0, 1.0)
        s.record(1.0, 3.0)
        assert s.mean() == 2.0
        assert s.max() == 3.0
        assert len(s) == 2

    def test_empty_series_mean_raises(self):
        with pytest.raises(ValueError):
            StatRegistry().series("empty").mean()
