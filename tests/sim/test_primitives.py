"""Tests for Delay/Event/Timeout primitives and the stats registry."""

import pytest

from repro.sim import TIMED_OUT, Delay, Simulator, Timeout
from repro.sim.stats import StatRegistry


class TestDelay:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Delay(-0.1)

    def test_duration_stored(self):
        assert Delay(2.5).duration == 2.5


class TestTimeout:
    def test_event_first(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def prog():
            val = yield Timeout(ev, 100.0)
            got.append((sim.now, val))

        sim.spawn(prog())
        sim.schedule(5.0, ev.succeed, "early")
        sim.run()
        assert got == [(5.0, "early")]

    def test_timeout_first(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def prog():
            val = yield Timeout(ev, 10.0)
            got.append((sim.now, val))

        sim.spawn(prog())
        sim.run(check_deadlock=False)
        assert got == [(10.0, TIMED_OUT)]

    def test_no_double_resume_when_both_fire(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def prog():
            val = yield Timeout(ev, 10.0)
            got.append(val)
            yield Delay(50.0)  # survive past the stale timeout callback

        sim.spawn(prog())
        sim.schedule(10.0, ev.succeed, "same-instant")
        sim.run()
        assert len(got) == 1


class TestEventValue:
    def test_value_before_fire_raises(self):
        sim = Simulator()
        ev = sim.event("pending")
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_value_after_fire(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed({"k": 1})
        assert ev.value == {"k": 1}
        assert ev.triggered


class TestStats:
    def test_counter_accumulates(self):
        reg = StatRegistry("x.")
        reg.count("hits")
        reg.count("hits", 4)
        assert reg.get("hits") == 5

    def test_untouched_counter_reads_zero(self):
        assert StatRegistry().get("nothing") == 0

    def test_snapshot_sorted(self):
        reg = StatRegistry()
        reg.count("b")
        reg.count("a", 2)
        assert list(reg.snapshot().items()) == [("a", 2), ("b", 1)]

    def test_series(self):
        reg = StatRegistry()
        s = reg.series("depth")
        s.record(0.0, 1.0)
        s.record(1.0, 3.0)
        assert s.mean() == 2.0
        assert s.max() == 3.0
        assert len(s) == 2

    def test_empty_series_mean_raises(self):
        with pytest.raises(ValueError):
            StatRegistry().series("empty").mean()

    def test_empty_series_max_raises_named_error(self):
        with pytest.raises(ValueError, match="'w.empty' is empty"):
            StatRegistry("w.").series("empty").max()

    def test_series_percentile(self):
        s = StatRegistry().series("lat")
        for i, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            s.record(float(i), v)
        assert s.percentile(50) == 20.0
        assert s.percentile(100) == 40.0
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_empty_series_percentile_raises_named_error(self):
        with pytest.raises(ValueError, match="'empty' is empty"):
            StatRegistry().series("empty").percentile(50)

    def test_snapshot_uses_prefixed_names(self):
        reg = StatRegistry("am[0].")
        reg.count("packets", 3)
        assert reg.snapshot() == {"am[0].packets": 3}

    def test_snapshot_series(self):
        reg = StatRegistry("am[0].")
        s = reg.series("occ")
        s.record(0.0, 1.0)
        s.record(1.0, 3.0)
        snap = reg.snapshot_series()
        assert set(snap) == {"am[0].occ"}
        assert snap["am[0].occ"]["count"] == 2
        assert snap["am[0].occ"]["mean"] == 2.0
        assert snap["am[0].occ"]["last"] == 3.0

    def test_snapshot_series_empty_series(self):
        reg = StatRegistry()
        reg.series("quiet")
        assert reg.snapshot_series() == {"quiet": {"count": 0}}
