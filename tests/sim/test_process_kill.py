"""Process.kill(): termination, cleanup, and stale-wakeup safety."""

import pytest

from repro.sim import Delay, Simulator, WaitEvent
from repro.sim.errors import ProcessKilled


class TestKill:
    def test_kill_blocked_process(self):
        sim = Simulator()
        ev = sim.event("never")

        def stuck():
            yield WaitEvent(ev)

        p = sim.spawn(stuck())
        sim.schedule(5.0, p.kill)
        sim.run()  # no DeadlockError: the blocked process was killed
        assert p.finished

    def test_finally_blocks_run(self):
        sim = Simulator()
        cleaned = []

        def prog():
            try:
                yield Delay(100.0)
            finally:
                cleaned.append(True)

        p = sim.spawn(prog())
        sim.schedule(1.0, p.kill)
        sim.run(check_deadlock=False)
        assert cleaned == [True]
        assert p.finished

    def test_stale_delay_wakeup_after_kill_is_ignored(self):
        sim = Simulator()

        def prog():
            yield Delay(10.0)  # wakeup at t=10 becomes stale
            raise AssertionError("must not resume after kill")

        p = sim.spawn(prog())
        sim.schedule(5.0, p.kill)
        sim.run(check_deadlock=False)
        assert p.finished

    def test_process_may_catch_kill_and_finish(self):
        sim = Simulator()
        note = []

        def graceful():
            try:
                yield Delay(100.0)
            except ProcessKilled:
                note.append("shutting down")

        p = sim.spawn(graceful())
        sim.schedule(1.0, p.kill)
        sim.run(check_deadlock=False)
        assert note == ["shutting down"]
        assert p.finished

    def test_kill_finished_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield Delay(1.0)
            return "done"

        p = sim.spawn(quick())
        sim.run()
        p.kill()
        assert p.result == "done"

    def test_kill_interacts_cleanly_with_other_processes(self):
        sim = Simulator()
        trace = []

        def worker(name, period):
            while True:
                yield Delay(period)
                trace.append(name)

        a = sim.spawn(worker("a", 2.0))
        b = sim.spawn(worker("b", 3.0))
        sim.schedule(7.0, a.kill)
        sim.schedule(10.0, b.kill)
        sim.run(check_deadlock=False)
        assert trace == ["a", "b", "a", "b", "a", "b"]
