"""Differential tests for the deterministic sharded event core.

``ShardedSimulator`` is pure decomposition: per-node event zones, a k-way
merge, and round barriers at the conservative lookahead.  It must execute
exactly the events the sequential reference schedulers execute, at the
same simulated times, in the same order — including under cancellation,
Timeout races, cross-shard posts, and fabric faults.  These tests mirror
``TestIdleFastForwardEquivalence`` with the sharded engine as the third
leg.
"""

import hashlib
import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import attach_spam
from repro.faults.injector import install_faults
from repro.faults.plan import FaultPlan
from repro.hardware.machine import build_sp_machine
from repro.sim import Delay, ShardedSimulator, Simulator, Timeout
from repro.sim.primitives import TIMED_OUT

N_SHARDS = 4
LOOKAHEAD = 0.5  # µs — same magnitude as SwitchParams.latency


def _make_sim(scheduler, idle_fast_forward=True):
    if scheduler == "sharded":
        sim = ShardedSimulator(idle_fast_forward=idle_fast_forward)
        sim.configure_shards(N_SHARDS, LOOKAHEAD)
        return sim
    return Simulator(scheduler=scheduler,
                     idle_fast_forward=idle_fast_forward)


# ---------------------------------------------------------------------------
# randomized schedule/cancel/cross-post workload
# ---------------------------------------------------------------------------

_DELAY_MENU = (0.0, 0.13, 1.0, 7.5, 63.9, 64.0, 64.1, 200.0, 5_000.0)


def _run_random_workload(scheduler, seed, spawn_cap=400):
    """Self-similar random workload over four shards: callbacks schedule
    locally (shard affinity is inherited), cancel pending timers, and
    occasionally post into a random *other* shard at ``>= lookahead``
    distance — the switch's delivery pattern.  Decisions are drawn from a
    seeded RNG in execution order, so two engines draw identical decisions
    iff they execute identical event orders."""
    sim = _make_sim(scheduler)
    rng = random.Random(seed)
    log = []
    handles = []
    next_tag = [0]

    def cb(tag):
        log.append((sim.now, tag))
        if next_tag[0] < spawn_cap:
            for _ in range(rng.randrange(3)):
                next_tag[0] += 1
                delay = rng.choice(_DELAY_MENU) + rng.random() * 3.0
                roll = rng.random()
                if roll < 0.25:
                    handles.append(sim.call_later(delay, cb, next_tag[0]))
                elif roll < 0.45:
                    # cross-shard: an absolute-time post into any shard,
                    # at or past the conservative lookahead bound
                    sim.post_cross(rng.randrange(N_SHARDS),
                                   sim.now + LOOKAHEAD + delay,
                                   cb, next_tag[0])
                else:
                    sim.schedule(delay, cb, next_tag[0])
        if handles and rng.random() < 0.25:
            handles.pop(rng.randrange(len(handles))).cancel()

    for i in range(20):
        next_tag[0] += 1
        sim.schedule_into(i % N_SHARDS, rng.choice(_DELAY_MENU),
                          cb, next_tag[0])
    sim.run()
    return sim, log


def _run_random_timeout_workload(scheduler, seed):
    """Pinned processes racing events against timeouts across shards —
    every event win leaves a cancelled-timer tombstone the merge must
    discard exactly like the sequential schedulers do."""
    sim = _make_sim(scheduler)
    rng = random.Random(seed)
    log = []

    def waiter(i):
        ev = sim.event(f"ev{i}")
        fire_at = rng.random() * 400.0
        timeout = 1e-9 + rng.random() * 400.0
        if rng.random() < 0.6:
            sim.schedule(fire_at, ev.succeed, i)
        value = yield Timeout(ev, timeout)
        log.append((sim.now, i, value is TIMED_OUT))
        yield Delay(rng.choice((0.0, 3.0, 750.0, 12_000.0)))
        log.append((sim.now, i, "done"))

    procs = [sim.spawn(waiter(i), name=f"w{i}", shard=i % N_SHARDS)
             for i in range(25)]
    sim.run_until_processes_done(procs, limit=1e9)
    return sim, log


def _assert_runs_identical(a, b):
    sim_a, log_a = a
    sim_b, log_b = b
    assert log_a == log_b
    assert sim_a.now == sim_b.now
    assert sim_a.events_executed == sim_b.events_executed
    assert sim_a.stale_events_skipped == sim_b.stale_events_skipped


class TestShardedEquivalence:
    """Property: sharded == wheel == heap — same execution log (the
    event-order digest of these workloads), same final clock, same
    executed/stale counts — under randomized schedule/cancel/cross-post
    and Timeout-race workloads."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_random_schedule_cancel_cross_post(self, seed):
        sharded = _run_random_workload("sharded", seed)
        _assert_runs_identical(sharded, _run_random_workload("wheel", seed))
        _assert_runs_identical(sharded, _run_random_workload("heap", seed))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_timeout_races(self, seed):
        sharded = _run_random_timeout_workload("sharded", seed)
        _assert_runs_identical(
            sharded, _run_random_timeout_workload("wheel", seed))
        _assert_runs_identical(
            sharded, _run_random_timeout_workload("heap", seed))


# ---------------------------------------------------------------------------
# lossy-faults leg: full event-order digest over a faulty AM workload
# ---------------------------------------------------------------------------

class _DigestRecorder:
    """sim.check hook capturing the executed event order as a digest
    (unsequenced observer entries, ``seq < 0``, are digest-neutral)."""

    def __init__(self):
        self._h = hashlib.blake2b(digest_size=16)
        self.executed = 0

    def on_execute(self, entry):
        if entry[1] < 0:
            return
        self._h.update(struct.pack("<dq", entry[0], entry[1]))
        self._h.update(getattr(entry[2], "__qualname__", "?").encode())
        self.executed += 1

    def on_stale(self, entry):
        pass

    def on_cancel(self, entry):
        pass

    def digest(self):
        return self._h.hexdigest()


def _lossy_am_digest(scheduler, seed, nodes=4, rounds=30):
    if scheduler == "sharded":
        sim = ShardedSimulator()
    else:
        sim = Simulator(scheduler=scheduler)
    machine = build_sp_machine(sim, nodes)
    install_faults(machine, FaultPlan.loss(seed=seed, rate=0.05))
    ams = attach_spam(machine)
    rec = _DigestRecorder()
    sim.check = rec
    got = []

    def handler(token, a, b):
        got.append((token.src, a, b))

    def prog(i):
        for r in range(rounds):
            yield from ams[i].request_2((i + 1) % nodes, handler, r, i)

    procs = [sim.spawn(prog(i), name=f"p{i}", shard=i)
             for i in range(nodes)]
    sim.run_until_processes_done(procs, limit=1e9)
    return rec.digest(), sim.now, got


@pytest.mark.parametrize("seed", [3, 17, 404])
def test_lossy_am_workload_digest_identical(seed):
    sharded = _lossy_am_digest("sharded", seed)
    assert sharded == _lossy_am_digest("wheel", seed)
    assert sharded == _lossy_am_digest("heap", seed)


# ---------------------------------------------------------------------------
# unit coverage for the sharded internals
# ---------------------------------------------------------------------------

def test_round_and_cross_post_counters_advance():
    sim = ShardedSimulator()
    machine = build_sp_machine(sim, 4)
    ams = attach_spam(machine)
    got = []

    def handler(token, x):
        got.append(x)

    def prog(i):
        for r in range(5):
            yield from ams[i].request_1((i + 1) % 4, handler, r)

    procs = [sim.spawn(prog(i), name=f"p{i}", shard=i) for i in range(4)]
    sim.run_until_processes_done(procs)
    assert sim.shard_count == 4
    assert sim.rounds > 0
    # every switch delivery went through the exchange
    assert sim.cross_posts > 0
    assert got  # traffic actually flowed cross-shard


def test_post_cross_enforces_conservative_bound():
    sim = ShardedSimulator()
    sim.configure_shards(2, 0.5)
    # at the bound (modulo float epsilon) is fine
    sim.post_cross(1, sim.now + 0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.post_cross(1, sim.now + 0.25, lambda: None)
    with pytest.raises(ValueError):
        sim.post_cross(7, sim.now + 0.5, lambda: None)  # no such shard


def test_post_cross_requires_configuration():
    sim = ShardedSimulator()
    with pytest.raises(RuntimeError):
        sim.post_cross(0, 1.0, lambda: None)


def test_configure_shards_validates():
    sim = ShardedSimulator()
    with pytest.raises(ValueError):
        sim.configure_shards(0, 0.5)
    with pytest.raises(ValueError):
        sim.configure_shards(4, 0.0)


def test_exchange_entries_count_as_pending():
    # quiesce predicates use live_pending_count(); an exchanged entry not
    # yet applied at a barrier is still future work
    sim = ShardedSimulator()
    sim.configure_shards(2, 0.5)
    fired = []
    sim.post_cross(1, 2.0, fired.append, "x")
    assert sim.live_pending_count() == 1
    sim.run()
    assert fired == ["x"]
    assert sim.now == 2.0
    assert sim.live_pending_count() == 0


def test_cancel_between_shards_counts_stale_once():
    sim = ShardedSimulator()
    sim.configure_shards(2, 0.5)
    fired = []
    h = sim.call_later(10.0, fired.append, "boom")
    sim.schedule_into(1, 20.0, fired.append, "keepalive")
    assert h.cancel()
    sim.run()
    assert fired == ["keepalive"]
    assert sim.events_executed == 1
    assert sim.stale_events_skipped == 1


def test_spawn_shard_pinning_inherits_affinity():
    sim = ShardedSimulator()
    sim.configure_shards(3, 0.5)
    seen = []

    def prog(i):
        yield Delay(1.0)
        # events scheduled from this callback chain stay in shard i
        seen.append((i, sim._active_shard))
        yield Delay(1.0)
        seen.append((i, sim._active_shard))

    procs = [sim.spawn(prog(i), name=f"p{i}", shard=i) for i in range(3)]
    sim.run_until_processes_done(procs)
    assert all(i == shard for i, shard in seen)


def test_sharded_negative_delay_clamp_matches_base():
    sim = ShardedSimulator()
    sim.configure_shards(2, 0.5)
    fired = []
    sim.schedule(-1e-10, fired.append, "ok")
    with pytest.raises(ValueError):
        sim.schedule(-1e-6, lambda: None)
    sim.run()
    assert fired == ["ok"]


def test_unconfigured_sharded_sim_is_a_plain_simulator():
    # degenerate single-shard mode: no rounds, no lookahead, but the
    # full Simulator contract (used before a machine is built)
    sim = ShardedSimulator()
    log = []
    sim.schedule(5.0, log.append, "a")
    sim.schedule(1.0, log.append, "b")
    sim.run()
    assert log == ["b", "a"]
    assert sim.now == 5.0
    assert sim.rounds == 0


# ---------------------------------------------------------------------------
# satellite regressions: sampler affinity, lookahead drift, pending counter
# ---------------------------------------------------------------------------

def _lossy_am_digest_with_sampler(scheduler, seed, sampler, nodes=4,
                                  rounds=20):
    """Like :func:`_lossy_am_digest` but with the Observatory gauge
    sampler optionally running.  Sampler ticks live on the unsequenced
    lane (digest-neutral) and are rescheduled from their own callbacks —
    shard affinity must keep each tick in the shard that executed it, or
    the sharded run diverges from the sequential one."""
    from repro.obs.core import Observatory

    if scheduler == "sharded":
        sim = ShardedSimulator()
    else:
        sim = Simulator(scheduler=scheduler)
    machine = build_sp_machine(sim, nodes)
    obs = Observatory().attach(machine)
    if sampler:
        obs.start_sampler(period_us=50.0)
    install_faults(machine, FaultPlan.loss(seed=seed, rate=0.05))
    ams = attach_spam(machine)
    rec = _DigestRecorder()
    sim.check = rec
    got = []

    def handler(token, a, b):
        got.append((token.src, a, b))

    def prog(i):
        for r in range(rounds):
            yield from ams[i].request_2((i + 1) % nodes, handler, r, i)

    procs = [sim.spawn(prog(i), name=f"p{i}", shard=i)
             for i in range(nodes)]
    sim.run_until_processes_done(procs, limit=1e9)
    return rec.digest(), sim.now, got


def test_sampler_timers_keep_shard_affinity_digest_neutral():
    # satellite: schedule_unsequenced inherits the executing event's
    # shard, so the gauge sampler can't perturb sharded execution
    seed = 29
    base = _lossy_am_digest_with_sampler("sharded", seed, sampler=False)
    assert _lossy_am_digest_with_sampler("sharded", seed, sampler=True) == base
    assert _lossy_am_digest_with_sampler("heap", seed, sampler=True) == base
    assert _lossy_am_digest_with_sampler("wheel", seed, sampler=True) == base


def test_post_cross_boundary_tolerates_magnitude_scaled_drift():
    # satellite: after ~1e7 us of simulated time one ulp is ~2e-9 —
    # larger than the absolute NEGATIVE_DELAY_EPSILON.  An exact-boundary
    # post that lost one ulp to float summation must still be accepted;
    # a genuine lookahead violation must still raise.
    import math

    sim = ShardedSimulator()
    sim.configure_shards(2, 0.5)
    fired = []
    sim.schedule(2e7, fired.append, "advance")
    sim.run()
    assert sim.now == 2e7
    exact = sim.now + 0.5
    shy = math.nextafter(exact, float("-inf"))
    assert shy < exact  # one ulp short of the bound
    entry = sim.post_cross(1, shy, lambda: None)
    assert entry[0] == shy  # timestamp NOT clamped (digest identity)
    with pytest.raises(ValueError):
        sim.post_cross(1, sim.now + 0.25, lambda: None)


def test_pending_counter_matches_walk_under_audit():
    # satellite: _pending_count() is an O(1) incremental counter; with
    # the audit flag on, every read cross-checks the zone walk
    sim = ShardedSimulator()
    sim.configure_shards(3, 0.5)
    old = ShardedSimulator._audit_pending
    ShardedSimulator._audit_pending = True
    try:
        handles = []
        for i in range(30):
            handles.append(sim.call_later(1.0 + i * 0.3, lambda: None))
            sim.post_cross(i % 3, sim.now + 0.5 + i, lambda: None)
            assert sim._pending_count() == sim._pending_count_walk()
        for h in handles[::3]:
            h.cancel()
            assert sim._pending_count() == sim._pending_count_walk()
        sim.run()
        assert sim._pending_count() == 0
    finally:
        ShardedSimulator._audit_pending = old


def test_audited_lossy_sharded_run_keeps_counter_consistent():
    old = ShardedSimulator._audit_pending
    ShardedSimulator._audit_pending = True
    try:
        # the audit assert inside _pending_count fires on any drift
        _lossy_am_digest("sharded", seed=11)
    finally:
        ShardedSimulator._audit_pending = old
