"""Differential + cancellation tests for the timing-wheel event core.

The ``wheel`` scheduler is pure optimization: it must execute exactly
the events the reference ``heap`` scheduler executes, at the same
simulated times, in the same order — including under cancellation and
with events landing on, inside, and far beyond the active window.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.engine import NEGATIVE_DELAY_EPSILON, TimerHandle
from repro.sim.errors import DeadlockError
from repro.sim.primitives import TIMED_OUT, Delay, Timeout


# ---------------------------------------------------------------------------
# differential property: wheel == heap over randomized schedule/cancel
# ---------------------------------------------------------------------------

# delays straddle the default 64 us window: sub-window, exactly on the
# boundary, just past it, and far beyond
_DELAY_MENU = (0.0, 0.13, 1.0, 7.5, 63.9, 64.0, 64.1, 200.0, 5_000.0)


def _run_random_workload(scheduler, seed, window_us=64.0, spawn_cap=2_000,
                         idle_fast_forward=True):
    """Self-similar random workload: callbacks schedule more callbacks
    and randomly cancel pending timers.  Decisions are drawn from a
    seeded RNG in execution order, so two schedulers draw identical
    decisions iff they execute identical event orders — any divergence
    snowballs into a log mismatch."""
    sim = Simulator(scheduler=scheduler, wheel_window_us=window_us,
                    idle_fast_forward=idle_fast_forward)
    rng = random.Random(seed)
    log = []
    handles = []
    next_tag = [0]

    def cb(tag):
        log.append((sim.now, tag))
        if next_tag[0] < spawn_cap:
            for _ in range(rng.randrange(3)):
                next_tag[0] += 1
                delay = rng.choice(_DELAY_MENU) + rng.random() * 3.0
                if rng.random() < 0.3:
                    handles.append(sim.call_later(delay, cb, next_tag[0]))
                else:
                    sim.schedule(delay, cb, next_tag[0])
        if handles and rng.random() < 0.25:
            handles.pop(rng.randrange(len(handles))).cancel()

    for _ in range(20):
        next_tag[0] += 1
        sim.schedule(rng.choice(_DELAY_MENU), cb, next_tag[0])
    sim.run()
    return sim, log


@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
def test_wheel_matches_heap_on_random_schedule_cancel(seed):
    heap_sim, heap_log = _run_random_workload("heap", seed)
    wheel_sim, wheel_log = _run_random_workload("wheel", seed)
    assert wheel_log == heap_log
    assert wheel_sim.now == heap_sim.now
    assert wheel_sim.events_executed == heap_sim.events_executed
    assert wheel_sim.stale_events_skipped == heap_sim.stale_events_skipped


@pytest.mark.parametrize("window_us", [0.5, 1.0, 16.0, 64.0, 1e9])
def test_wheel_window_width_is_not_a_correctness_knob(window_us):
    # any window width must give the heap's exact execution order
    _, heap_log = _run_random_workload("heap", 99)
    _, wheel_log = _run_random_workload("wheel", 99, window_us=window_us)
    assert wheel_log == heap_log


def test_same_time_events_run_in_insertion_order_across_window_refills():
    # events at one instant, scheduled before and after a window turn,
    # must still run in global insertion order
    sim = Simulator(scheduler="wheel", wheel_window_us=10.0)
    log = []
    sim.schedule(500.0, log.append, "first")
    sim.schedule(500.0, log.append, "second")
    sim.schedule(200.0, lambda: sim.schedule(300.0, log.append, "third"))
    sim.run()
    assert log == ["first", "second", "third"]
    assert sim.now == 500.0


# ---------------------------------------------------------------------------
# idle fast-forward: pure optimization, must be behaviour-invisible
# ---------------------------------------------------------------------------

def _run_random_timeout_workload(scheduler, seed, idle_fast_forward=True):
    """Processes racing events against timeouts.  Every event win leaves a
    cancelled timer tombstone in the queue, and every gap between firings
    is an idle stretch the fast-forward path may jump — exactly the state
    it must cross without executing, reordering, or dropping anything."""
    sim = Simulator(scheduler=scheduler, idle_fast_forward=idle_fast_forward)
    rng = random.Random(seed)
    log = []

    def waiter(i):
        ev = sim.event(f"ev{i}")
        fire_at = rng.random() * 400.0
        timeout = 1e-9 + rng.random() * 400.0
        if rng.random() < 0.6:
            sim.schedule(fire_at, ev.succeed, i)
        value = yield Timeout(ev, timeout)
        log.append((sim.now, i, value is TIMED_OUT))
        # long tail delays leave genuinely idle gaps between survivors
        yield Delay(rng.choice((0.0, 3.0, 750.0, 12_000.0)))
        log.append((sim.now, i, "done"))

    procs = [sim.spawn(waiter(i), name=f"w{i}") for i in range(25)]
    sim.run_until_processes_done(procs, limit=1e9)
    return sim, log


def _assert_runs_identical(a, b):
    sim_a, log_a = a
    sim_b, log_b = b
    assert log_a == log_b
    assert sim_a.now == sim_b.now
    assert sim_a.events_executed == sim_b.events_executed
    assert sim_a.stale_events_skipped == sim_b.stale_events_skipped


class TestIdleFastForwardEquivalence:
    """Property: fast-forward on vs off is observation-identical — same
    execution log (the event-order digest of these workloads), same final
    clock, same executed/stale counts."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           window_us=st.sampled_from([0.5, 16.0, 64.0, 1e9]))
    def test_random_schedule_cancel(self, seed, window_us):
        _assert_runs_identical(
            _run_random_workload("wheel", seed, window_us=window_us,
                                 spawn_cap=400),
            _run_random_workload("wheel", seed, window_us=window_us,
                                 spawn_cap=400, idle_fast_forward=False))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_timeout_races(self, seed):
        on = _run_random_timeout_workload("wheel", seed)
        _assert_runs_identical(
            on, _run_random_timeout_workload("wheel", seed,
                                             idle_fast_forward=False))
        # and both must match the reference heap scheduler
        _assert_runs_identical(on, _run_random_timeout_workload("heap", seed))


def test_live_pending_count_excludes_tombstones():
    sim = Simulator()
    handles = [sim.call_later(1_000.0 * (i + 1), lambda: None)
               for i in range(5)]
    sim.schedule(10.0, lambda: None)
    assert sim.live_pending_count() == 6
    for h in handles[1:]:
        h.cancel()
    assert sim.live_pending_count() == 2
    sim.run()
    assert sim.live_pending_count() == 0
    assert sim.stale_events_skipped == 4


# ---------------------------------------------------------------------------
# cancel racing a same-timestamp batch (regression: the batched dispatch
# loops must re-read the callback slot, not capture it at batch start)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("idle_fast_forward", [True, False])
@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
class TestSameInstantCancelRace:
    def test_cancel_of_later_same_instant_entry_never_fires(
            self, scheduler, idle_fast_forward):
        # the canceller executes at (T, seq_a); the victim timer sits at
        # (T, seq_b > seq_a) in the same dispatch batch
        sim = Simulator(scheduler=scheduler,
                        idle_fast_forward=idle_fast_forward)
        fired = []
        h = []
        sim.schedule(5.0, lambda: h[0].cancel())
        h.append(sim.call_later(5.0, fired.append, "boom"))
        sim.run()
        assert fired == []
        assert sim.events_executed == 1
        assert sim.stale_events_skipped == 1

    def test_cancel_then_reschedule_same_instant_fires_once(
            self, scheduler, idle_fast_forward):
        sim = Simulator(scheduler=scheduler,
                        idle_fast_forward=idle_fast_forward)
        fired = []
        h = []

        def flip():
            h[0].cancel()
            h[0] = sim.call_later(0.0, fired.append, "new")

        sim.schedule(5.0, flip)
        h.append(sim.call_later(5.0, fired.append, "old"))
        sim.run()
        assert fired == ["new"]
        assert sim.stale_events_skipped == 1

    def test_stale_generation_fire_fails_loudly(
            self, scheduler, idle_fast_forward):
        sim = Simulator(scheduler=scheduler,
                        idle_fast_forward=idle_fast_forward)
        h = sim.call_later(1.0, lambda: None)
        stale_gen = h.gen
        h.cancel()
        with pytest.raises(RuntimeError):
            h._fire(stale_gen, lambda: None, ())


# ---------------------------------------------------------------------------
# cancellable timers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
class TestTimerCancellation:
    def test_cancelled_timer_never_fires_and_is_not_counted(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        h = sim.call_later(10.0, fired.append, "boom")
        sim.schedule(20.0, lambda: None)  # keep the queue non-empty past 10
        assert h.active
        assert h.cancel()
        assert not h.active
        assert not h.cancel()  # second cancel is a no-op
        sim.run()
        assert fired == []
        # the tombstone was skipped, not executed: only the keep-alive
        # event counts, and the skip is visible in its own counter
        assert sim.events_executed == 1
        assert sim.stale_events_skipped == 1

    def test_cancel_after_fire_is_a_noop(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        h = sim.call_later(5.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert not h.active
        assert not h.cancel()

    def test_generation_bumps_on_cancel_and_fire(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        h1 = sim.call_later(1.0, lambda: None)
        g0 = h1.gen
        h1.cancel()
        assert h1.gen == g0 + 1
        h2 = sim.call_later(1.0, lambda: None)
        g1 = h2.gen
        sim.run()
        assert h2.gen == g1 + 1

    def test_stale_timeout_wakeup_never_fires(self, scheduler):
        # A process blocks on Timeout(event, duration); the event wins the
        # race.  The loser timer must be discarded as a tombstone — it may
        # not re-resume the process, and it may not count as an event.
        sim = Simulator(scheduler=scheduler)
        ev = sim.event("ack")
        outcomes = []

        def waiter():
            value = yield Timeout(ev, 1_000.0)
            outcomes.append(value)
            # keep living past the stale timer's deadline: a buggy wakeup
            # would resume the generator here and append a second outcome
            yield Delay(2_000.0)

        sim.spawn(waiter(), name="waiter")
        sim.schedule(5.0, ev.succeed, "acked")
        sim.run()
        assert outcomes == ["acked"]
        assert sim.stale_events_skipped == 1
        assert sim.now == 2_005.0

    def test_timeout_path_still_fires_without_event(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        ev = sim.event("never")
        outcomes = []

        def waiter():
            value = yield Timeout(ev, 50.0)
            outcomes.append(value is TIMED_OUT)

        sim.spawn(waiter(), name="waiter")
        sim.run()
        assert outcomes == [True]
        assert sim.now == 50.0


def test_timer_handle_is_opaque_but_reprs():
    sim = Simulator()
    h = sim.call_later(1.0, lambda: None)
    assert isinstance(h, TimerHandle)
    assert "active" in repr(h)
    h.cancel()
    assert "idle" in repr(h)


# ---------------------------------------------------------------------------
# negative-delay epsilon clamp (float-error regression)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
class TestNegativeDelayClamp:
    def test_epsilon_negative_delay_clamps_to_now(self, scheduler):
        # Switch.inject's per-hop float sums can land an epsilon behind
        # sim.now; that must schedule "immediately", not raise
        sim = Simulator(scheduler=scheduler)
        fired = []
        sim.schedule(-1e-10, fired.append, "ok")
        sim.run()
        assert fired == ["ok"]
        assert sim.now == 0.0

    def test_at_epsilon_in_the_past_clamps(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []

        def late():
            # an absolute timestamp an epsilon before the current instant
            sim.at(sim.now - 1e-12, fired.append, "ok")

        sim.schedule(5.0, late)
        sim.run()
        assert fired == ["ok"]
        assert sim.now == 5.0

    def test_real_past_scheduling_still_raises(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        with pytest.raises(ValueError):
            sim.schedule(-1e-6, lambda: None)
        with pytest.raises(ValueError):
            sim.at(-1.0, lambda: None)
        assert -1e-6 < -NEGATIVE_DELAY_EPSILON  # the clamp is truly tiny


# ---------------------------------------------------------------------------
# engine contract smoke (wheel scheduler)
# ---------------------------------------------------------------------------

def test_wheel_deadlock_detection_still_works():
    from repro.sim.primitives import WaitEvent

    sim = Simulator(scheduler="wheel")

    def blocked():
        yield WaitEvent(sim.event("forever"))

    sim.spawn(blocked(), name="blocked")
    with pytest.raises(DeadlockError):
        sim.run()


def test_invalid_scheduler_and_window_rejected():
    with pytest.raises(ValueError):
        Simulator(scheduler="calendar")
    with pytest.raises(ValueError):
        Simulator(wheel_window_us=0.0)
