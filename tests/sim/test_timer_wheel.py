"""Differential + cancellation tests for the timing-wheel event core.

The ``wheel`` scheduler is pure optimization: it must execute exactly
the events the reference ``heap`` scheduler executes, at the same
simulated times, in the same order — including under cancellation and
with events landing on, inside, and far beyond the active window.
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.engine import NEGATIVE_DELAY_EPSILON, TimerHandle
from repro.sim.errors import DeadlockError
from repro.sim.primitives import TIMED_OUT, Delay, Timeout


# ---------------------------------------------------------------------------
# differential property: wheel == heap over randomized schedule/cancel
# ---------------------------------------------------------------------------

# delays straddle the default 64 us window: sub-window, exactly on the
# boundary, just past it, and far beyond
_DELAY_MENU = (0.0, 0.13, 1.0, 7.5, 63.9, 64.0, 64.1, 200.0, 5_000.0)


def _run_random_workload(scheduler, seed, window_us=64.0, spawn_cap=2_000):
    """Self-similar random workload: callbacks schedule more callbacks
    and randomly cancel pending timers.  Decisions are drawn from a
    seeded RNG in execution order, so two schedulers draw identical
    decisions iff they execute identical event orders — any divergence
    snowballs into a log mismatch."""
    sim = Simulator(scheduler=scheduler, wheel_window_us=window_us)
    rng = random.Random(seed)
    log = []
    handles = []
    next_tag = [0]

    def cb(tag):
        log.append((sim.now, tag))
        if next_tag[0] < spawn_cap:
            for _ in range(rng.randrange(3)):
                next_tag[0] += 1
                delay = rng.choice(_DELAY_MENU) + rng.random() * 3.0
                if rng.random() < 0.3:
                    handles.append(sim.call_later(delay, cb, next_tag[0]))
                else:
                    sim.schedule(delay, cb, next_tag[0])
        if handles and rng.random() < 0.25:
            handles.pop(rng.randrange(len(handles))).cancel()

    for _ in range(20):
        next_tag[0] += 1
        sim.schedule(rng.choice(_DELAY_MENU), cb, next_tag[0])
    sim.run()
    return sim, log


@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
def test_wheel_matches_heap_on_random_schedule_cancel(seed):
    heap_sim, heap_log = _run_random_workload("heap", seed)
    wheel_sim, wheel_log = _run_random_workload("wheel", seed)
    assert wheel_log == heap_log
    assert wheel_sim.now == heap_sim.now
    assert wheel_sim.events_executed == heap_sim.events_executed
    assert wheel_sim.stale_events_skipped == heap_sim.stale_events_skipped


@pytest.mark.parametrize("window_us", [0.5, 1.0, 16.0, 64.0, 1e9])
def test_wheel_window_width_is_not_a_correctness_knob(window_us):
    # any window width must give the heap's exact execution order
    _, heap_log = _run_random_workload("heap", 99)
    _, wheel_log = _run_random_workload("wheel", 99, window_us=window_us)
    assert wheel_log == heap_log


def test_same_time_events_run_in_insertion_order_across_window_refills():
    # events at one instant, scheduled before and after a window turn,
    # must still run in global insertion order
    sim = Simulator(scheduler="wheel", wheel_window_us=10.0)
    log = []
    sim.schedule(500.0, log.append, "first")
    sim.schedule(500.0, log.append, "second")
    sim.schedule(200.0, lambda: sim.schedule(300.0, log.append, "third"))
    sim.run()
    assert log == ["first", "second", "third"]
    assert sim.now == 500.0


# ---------------------------------------------------------------------------
# cancellable timers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
class TestTimerCancellation:
    def test_cancelled_timer_never_fires_and_is_not_counted(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        h = sim.call_later(10.0, fired.append, "boom")
        sim.schedule(20.0, lambda: None)  # keep the queue non-empty past 10
        assert h.active
        assert h.cancel()
        assert not h.active
        assert not h.cancel()  # second cancel is a no-op
        sim.run()
        assert fired == []
        # the tombstone was skipped, not executed: only the keep-alive
        # event counts, and the skip is visible in its own counter
        assert sim.events_executed == 1
        assert sim.stale_events_skipped == 1

    def test_cancel_after_fire_is_a_noop(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        h = sim.call_later(5.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert not h.active
        assert not h.cancel()

    def test_generation_bumps_on_cancel_and_fire(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        h1 = sim.call_later(1.0, lambda: None)
        g0 = h1.gen
        h1.cancel()
        assert h1.gen == g0 + 1
        h2 = sim.call_later(1.0, lambda: None)
        g1 = h2.gen
        sim.run()
        assert h2.gen == g1 + 1

    def test_stale_timeout_wakeup_never_fires(self, scheduler):
        # A process blocks on Timeout(event, duration); the event wins the
        # race.  The loser timer must be discarded as a tombstone — it may
        # not re-resume the process, and it may not count as an event.
        sim = Simulator(scheduler=scheduler)
        ev = sim.event("ack")
        outcomes = []

        def waiter():
            value = yield Timeout(ev, 1_000.0)
            outcomes.append(value)
            # keep living past the stale timer's deadline: a buggy wakeup
            # would resume the generator here and append a second outcome
            yield Delay(2_000.0)

        sim.spawn(waiter(), name="waiter")
        sim.schedule(5.0, ev.succeed, "acked")
        sim.run()
        assert outcomes == ["acked"]
        assert sim.stale_events_skipped == 1
        assert sim.now == 2_005.0

    def test_timeout_path_still_fires_without_event(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        ev = sim.event("never")
        outcomes = []

        def waiter():
            value = yield Timeout(ev, 50.0)
            outcomes.append(value is TIMED_OUT)

        sim.spawn(waiter(), name="waiter")
        sim.run()
        assert outcomes == [True]
        assert sim.now == 50.0


def test_timer_handle_is_opaque_but_reprs():
    sim = Simulator()
    h = sim.call_later(1.0, lambda: None)
    assert isinstance(h, TimerHandle)
    assert "active" in repr(h)
    h.cancel()
    assert "idle" in repr(h)


# ---------------------------------------------------------------------------
# negative-delay epsilon clamp (float-error regression)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
class TestNegativeDelayClamp:
    def test_epsilon_negative_delay_clamps_to_now(self, scheduler):
        # Switch.inject's per-hop float sums can land an epsilon behind
        # sim.now; that must schedule "immediately", not raise
        sim = Simulator(scheduler=scheduler)
        fired = []
        sim.schedule(-1e-10, fired.append, "ok")
        sim.run()
        assert fired == ["ok"]
        assert sim.now == 0.0

    def test_at_epsilon_in_the_past_clamps(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []

        def late():
            # an absolute timestamp an epsilon before the current instant
            sim.at(sim.now - 1e-12, fired.append, "ok")

        sim.schedule(5.0, late)
        sim.run()
        assert fired == ["ok"]
        assert sim.now == 5.0

    def test_real_past_scheduling_still_raises(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        with pytest.raises(ValueError):
            sim.schedule(-1e-6, lambda: None)
        with pytest.raises(ValueError):
            sim.at(-1.0, lambda: None)
        assert -1e-6 < -NEGATIVE_DELAY_EPSILON  # the clamp is truly tiny


# ---------------------------------------------------------------------------
# engine contract smoke (wheel scheduler)
# ---------------------------------------------------------------------------

def test_wheel_deadlock_detection_still_works():
    from repro.sim.primitives import WaitEvent

    sim = Simulator(scheduler="wheel")

    def blocked():
        yield WaitEvent(sim.event("forever"))

    sim.spawn(blocked(), name="blocked")
    with pytest.raises(DeadlockError):
        sim.run()


def test_invalid_scheduler_and_window_rejected():
    with pytest.raises(ValueError):
        Simulator(scheduler="calendar")
    with pytest.raises(ValueError):
        Simulator(wheel_window_us=0.0)
