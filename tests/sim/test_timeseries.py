"""TimeSeries ring-buffer bound + single-sort snapshot percentiles."""

import pytest

from repro.sim.stats import StatRegistry, TimeSeries


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TimeSeries("x", capacity=0)
    with pytest.raises(ValueError):
        TimeSeries("x", capacity=-3)
    TimeSeries("x", capacity=1)      # boundary is legal
    TimeSeries("x")                  # unbounded default


def test_ring_evicts_oldest_and_counts_drops():
    ts = TimeSeries("occ", capacity=3)
    for i in range(5):
        ts.record(float(i), float(i * 10))
    assert len(ts) == 3
    assert ts.values == [20.0, 30.0, 40.0]   # 0 and 10 evicted
    assert ts.dropped_samples == 2


def test_unbounded_series_never_drops():
    ts = TimeSeries("occ")
    for i in range(100):
        ts.record(float(i), float(i))
    assert len(ts) == 100
    assert ts.dropped_samples == 0
    assert "dropped_samples" not in ts.snapshot()


def test_snapshot_surfaces_dropped_samples():
    ts = TimeSeries("occ", capacity=2)
    for i in range(6):
        ts.record(float(i), float(i))
    snap = ts.snapshot()
    assert snap["dropped_samples"] == 4
    assert snap["count"] == 2
    assert snap["last"] == 5.0


def test_snapshot_percentiles_match_per_quantile_queries():
    ts = TimeSeries("lat")
    for i, v in enumerate([5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0]):
        ts.record(float(i), v)
    snap = ts.snapshot()
    # the snapshot sorts once and reads every quantile from the shared
    # sorted copy; it must agree with the one-sort-per-call API
    for key, p in (("p50", 50), ("p95", 95), ("p99", 99)):
        assert snap[key] == ts.percentile(p)
    assert snap["max"] == ts.max() == 9.0
    assert snap["mean"] == pytest.approx(ts.mean())


def test_empty_snapshot_is_count_zero():
    assert TimeSeries("empty").snapshot() == {"count": 0}
    assert TimeSeries("empty", capacity=4).snapshot() == {"count": 0}


def test_registry_series_capacity_applies_to_new_series_only():
    reg = StatRegistry("sw.")
    s = reg.series("queue", capacity=2)
    for i in range(4):
        s.record(float(i), float(i))
    assert len(s) == 2 and s.dropped_samples == 2
    # re-request with a different capacity: the existing bound sticks
    again = reg.series("queue", capacity=100)
    assert again is s
    assert again.capacity == 2
