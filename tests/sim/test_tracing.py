"""Tracer tests: collection, filtering, and protocol-schedule queries."""

import pytest

from repro.am import attach_spam
from repro.hardware import build_sp_machine
from repro.hardware.packet import PacketKind
from repro.sim import Simulator
from repro.sim.tracing import TraceEvent, Tracer


def run_store(tracer_limit=1_000_000, dropper=None, nbytes=2000):
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    if dropper is not None:
        m.switch.fault_injector = dropper
    tracer = Tracer(limit=tracer_limit).attach(m)
    am0, am1 = attach_spam(m)
    src = m.node(0).memory.alloc(nbytes)
    dst = m.node(1).memory.alloc(nbytes)
    flag = [0]

    def sender():
        tracer.mark(sim, 0, "store-begin")
        yield from am0.store(1, src, dst, nbytes)
        tracer.mark(sim, 0, "store-end")
        flag[0] = 1

    def receiver():
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender())
    q = sim.spawn(receiver())
    sim.run_until_processes_done([p, q], limit=1e8)
    return tracer


class TestCollection:
    def test_records_arrivals_on_both_nodes(self):
        tracer = run_store()
        # data packets at node 1, the chunk ack back at node 0
        assert tracer.count(kind="rx", node=1) >= 9   # 2000 B = 9 packets
        assert tracer.count(kind="rx", node=0) >= 1   # the ack

    def test_marks_recorded_in_order(self):
        tracer = run_store()
        marks = tracer.filter(kind="mark")
        assert [m.detail for m in marks] == ["store-begin", "store-end"]
        assert marks[0].t < marks[1].t

    def test_spans_measures_store_duration(self):
        tracer = run_store()
        spans = tracer.spans("store-begin", "store-end")
        assert len(spans) == 1
        assert 50.0 < spans[0] < 1000.0

    def test_drop_events_recorded(self):
        drops = {"n": 0}

        def drop_first_data(pkt):
            if pkt.kind == PacketKind.STORE_DATA and drops["n"] == 0:
                drops["n"] += 1
                return True
            return False

        tracer = run_store(dropper=drop_first_data)
        assert tracer.count(kind="drop") == 1
        assert "STORE_DATA" in tracer.first(kind="drop").detail

    def test_limit_bounds_memory(self):
        tracer = run_store(tracer_limit=5)
        assert len(tracer) == 5
        assert tracer.dropped_events > 0
        assert "beyond limit" in tracer.render()


def run_one_word_roundtrip():
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    tracer = Tracer().attach(m)
    am0, am1 = attach_spam(m)
    got = [0]

    def reply_handler(token, x):
        got[0] += 1

    def request_handler(token, x):
        yield from token.reply_1(reply_handler, x)

    def pinger():
        yield from am0.request_1(1, request_handler, 7)
        while not got[0]:
            yield from am0._wait_progress()

    def ponger():
        # exit on the locally visible condition (the handled request), so
        # node 1 never idles long enough to emit keepalive traffic
        while m.node(1).am.stats.get("handlers_run") == 0:
            yield from am1._wait_progress()

    p = sim.spawn(pinger())
    q = sim.spawn(ponger())
    sim.run_until_processes_done([p, q], limit=1e7)
    return tracer


class TestTxEvents:
    def test_transmits_recorded(self):
        """The transmit path reports into the tracer, not just rx/drop."""
        tracer = run_one_word_roundtrip()
        assert tracer.count(kind="tx", node=0) == 1
        assert tracer.count(kind="tx", node=1) == 1
        assert "REQUEST to n1" in tracer.first(kind="tx", node=0).detail
        assert "REPLY to n0" in tracer.first(kind="tx", node=1).detail

    def test_tx_rx_ordering_for_one_word_roundtrip(self):
        tracer = run_one_word_roundtrip()
        wire = [(e.kind, e.node) for e in tracer.events
                if e.kind in ("tx", "rx")]
        assert wire == [("tx", 0), ("rx", 1), ("tx", 1), ("rx", 0)]

    def test_tx_precedes_matching_rx_in_time(self):
        tracer = run_one_word_roundtrip()
        tx = tracer.first(kind="tx", node=0)
        rx = tracer.first(kind="rx", node=1)
        assert tx.t <= rx.t

    def test_store_transmits_counted(self):
        tracer = run_store()
        # 2000 B = 9 data packets leave node 0, plus the RTS exchange
        assert tracer.count(kind="tx", node=0) >= 9


class TestSpans:
    def test_spans_with_interleaved_marks(self):
        log = Tracer()

        class FakeSim:
            now = 0.0

        sim = FakeSim()
        for t, detail in [(1.0, "begin"), (2.0, "noise"), (3.0, "begin"),
                          (5.0, "end"), (6.0, "end"), (7.0, "begin"),
                          (9.0, "end")]:
            sim.now = t
            log.mark(sim, 0, detail)
        # second "begin" ignored while open; second "end" has no open span
        assert log.spans("begin", "end") == [4.0, 2.0]

    def test_end_without_start_ignored(self):
        log = Tracer()

        class FakeSim:
            now = 5.0

        log.mark(FakeSim(), 0, "end")
        assert log.spans("begin", "end") == []


class TestQuerying:
    def test_filter_by_contains(self):
        tracer = run_store()
        acks = tracer.filter(kind="rx", contains="ACK")
        assert acks and all("ACK" in e.detail for e in acks)

    def test_first_returns_none_on_miss(self):
        tracer = Tracer()
        assert tracer.first(kind="rx") is None

    def test_render_shows_timeline(self):
        tracer = run_store()
        text = tracer.render(last=3)
        assert text.count("\n") == 2
        assert "us" in text

    def test_event_str(self):
        e = TraceEvent(t=12.5, kind="tx", node=3, detail="hello")
        assert "n3" in str(e) and "hello" in str(e)
