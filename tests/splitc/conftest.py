"""Fixtures: Split-C runtimes over every supported stack."""

import pytest

from repro.am import attach_generic_am, attach_spam
from repro.hardware import build_generic_machine, build_sp_machine
from repro.hardware.params import machine_params
from repro.mpl import attach_mpl_am
from repro.sim import Simulator
from repro.splitc import attach_splitc


def build_stack(stack: str, nprocs: int):
    """(machine, [SplitC]) for 'sp-am', 'sp-mpl', 'cm5', 'meiko', 'unet'."""
    sim = Simulator()
    if stack == "sp-am":
        m = build_sp_machine(sim, nprocs)
        attach_spam(m)
    elif stack == "sp-mpl":
        m = build_sp_machine(sim, nprocs)
        attach_mpl_am(m)
    else:
        m = build_generic_machine(sim, nprocs, machine_params(stack))
        attach_generic_am(m)
    return m, attach_splitc(m)


def run_spmd(machine, make_prog, limit=1e9):
    """Spawn make_prog(rank) on every node; wait for all."""
    sim = machine.sim
    procs = [sim.spawn(make_prog(r), name=f"sc{r}")
             for r in range(machine.nprocs)]
    sim.run_until_processes_done(procs, limit=limit)
    return procs


@pytest.fixture(params=["sp-am", "sp-mpl", "cm5"])
def stack4(request):
    return build_stack(request.param, 4)
