"""Split-C library surface: blocking bulk ops, doubles, collectives."""

import pytest

from repro.splitc import (
    GlobalPtr,
    all_gather_words,
    all_reduce_to_all,
    bulk_read,
    bulk_write,
    exchange,
    read_double,
    scan,
    write_double,
)
from tests.splitc.conftest import build_stack, run_spmd


class TestBlockingBulk:
    def test_bulk_read(self):
        m, rts = build_stack("sp-am", 2)
        n = 3000
        data = bytes(i % 256 for i in range(n))
        remote = m.node(1).memory.alloc(n)
        local = m.node(0).memory.alloc(n)
        m.node(1).memory.write(remote, data)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from bulk_read(rts[0], local, GlobalPtr(1, remote), n)
                    assert m.node(0).memory.read(local, n) == data
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)

    def test_bulk_write(self):
        m, rts = build_stack("sp-am", 2)
        n = 2000
        data = bytes((5 * i) % 256 for i in range(n))
        local = m.node(0).memory.alloc(n)
        remote = m.node(1).memory.alloc(n)
        m.node(0).memory.write(local, data)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from bulk_write(rts[0], GlobalPtr(1, remote),
                                          local, n)
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)
        assert m.node(1).memory.read(remote, n) == data


class TestDoubles:
    @pytest.mark.parametrize("value", [0.0, 3.14159, -2.5e300, 1e-300])
    def test_double_roundtrip(self, value):
        m, rts = build_stack("sp-am", 2)
        addr = m.node(1).memory.alloc(8)
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    yield from write_double(rts[0], GlobalPtr(1, addr), value)
                    v = yield from read_double(rts[0], GlobalPtr(1, addr))
                    out.append(v)
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)
        assert out == [value]


class TestExchange:
    def test_pairwise_exchange(self):
        m, rts = build_stack("sp-am", 2)
        n = 4096
        sends, recvs, datas = [], [], []
        for r in range(2):
            d = bytes([r * 3 + 1]) * n
            s = m.node(r).memory.alloc(n)
            v = m.node(r).memory.alloc(n)
            m.node(r).memory.write(s, d)
            sends.append(s), recvs.append(v), datas.append(d)

        def prog(rank):
            def go():
                peer = 1 - rank
                yield from exchange(rts[rank], peer, sends[rank],
                                    GlobalPtr(peer, recvs[peer]), n, n)
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)
        assert m.node(0).memory.read(recvs[0], n) == datas[1]
        assert m.node(1).memory.read(recvs[1], n) == datas[0]


class TestLibraryCollectives:
    @pytest.mark.parametrize("op,expect", [("sum", 1 + 2 + 3 + 4),
                                           ("min", 1), ("max", 4)])
    def test_all_reduce_to_all(self, op, expect):
        m, rts = build_stack("sp-am", 4)
        out = {}

        def prog(rank):
            def go():
                v = yield from all_reduce_to_all(rts[rank], rank + 1, op)
                out[rank] = v
            return go()

        run_spmd(m, prog)
        assert all(v == expect for v in out.values())

    def test_all_gather_words(self):
        m, rts = build_stack("sp-am", 4)
        out = {}

        def prog(rank):
            def go():
                vec = yield from all_gather_words(rts[rank], rank * 10)
                out[rank] = vec
            return go()

        run_spmd(m, prog)
        for rank in range(4):
            assert out[rank] == [0, 10, 20, 30]

    def test_exclusive_scan_sum(self):
        m, rts = build_stack("sp-am", 4)
        out = {}

        def prog(rank):
            def go():
                v = yield from scan(rts[rank], rank + 1, "sum")
                out[rank] = v
            return go()

        run_spmd(m, prog)
        assert out == {0: 0, 1: 1, 2: 3, 3: 6}

    def test_repeated_collectives_stable(self):
        """The lazy allgather region must be reusable across calls."""
        m, rts = build_stack("sp-am", 3)
        out = {r: [] for r in range(3)}

        def prog(rank):
            def go():
                for it in range(3):
                    v = yield from all_reduce_to_all(rts[rank],
                                                     rank + it, "sum")
                    out[rank].append(v)
            return go()

        run_spmd(m, prog)
        for r in range(3):
            assert out[r] == [3, 6, 9]

    def test_over_mpl_stack_too(self):
        m, rts = build_stack("sp-mpl", 2)
        out = {}

        def prog(rank):
            def go():
                v = yield from all_reduce_to_all(rts[rank], rank + 5, "sum")
                out[rank] = v
            return go()

        run_spmd(m, prog)
        assert all(v == 11 for v in out.values())
