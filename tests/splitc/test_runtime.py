"""Split-C runtime semantics over every stack (SP AM, AM-over-MPL, CM-5)."""

import struct

import pytest

from repro.splitc import GlobalPtr
from tests.splitc.conftest import build_stack, run_spmd


class TestWordAccess:
    def test_read_remote_word(self, stack4):
        m, rts = stack4
        addr = m.node(2).memory.alloc(8)
        m.node(2).memory.write(addr, struct.pack("<q", 777))
        out = []

        def prog(rank):
            def go():
                if rank == 0:
                    v = yield from rts[0].read_word(GlobalPtr(2, addr))
                    out.append(v)
                    yield from rts[0].barrier()
                else:
                    yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)
        assert out == [777]

    def test_write_remote_word(self, stack4):
        m, rts = stack4
        addr = m.node(3).memory.alloc(8)

        def prog(rank):
            def go():
                if rank == 1:
                    yield from rts[1].write_word(GlobalPtr(3, addr), -12345)
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)
        assert struct.unpack("<q", m.node(3).memory.read(addr, 8))[0] == -12345

    def test_local_word_access_short_circuits(self):
        m, rts = build_stack("sp-am", 2)
        addr = m.node(0).memory.alloc(8)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from rts[0].write_word(GlobalPtr(0, addr), 5)
                    v = yield from rts[0].read_word(GlobalPtr(0, addr))
                    assert v == 5
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)


class TestBulkOps:
    def test_get_bulk_sync(self, stack4):
        m, rts = stack4
        n = 3000
        data = bytes(i % 256 for i in range(n))
        remote = m.node(1).memory.alloc(n)
        local = m.node(0).memory.alloc(n)
        m.node(1).memory.write(remote, data)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from rts[0].get_bulk(local, GlobalPtr(1, remote), n)
                    yield from rts[0].sync()
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)
        assert m.node(0).memory.read(local, n) == data

    def test_put_bulk_sync(self, stack4):
        m, rts = stack4
        n = 2048
        data = bytes((3 * i) % 256 for i in range(n))
        local = m.node(0).memory.alloc(n)
        remote = m.node(2).memory.alloc(n)
        m.node(0).memory.write(local, data)

        def prog(rank):
            def go():
                if rank == 0:
                    yield from rts[0].put_bulk(GlobalPtr(2, remote), local, n)
                    yield from rts[0].sync()
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)
        assert m.node(2).memory.read(remote, n) == data

    def test_many_overlapping_gets(self):
        m, rts = build_stack("sp-am", 2)
        k, n = 10, 1000
        remotes, locals_, datas = [], [], []
        for i in range(k):
            d = bytes((i + j) % 256 for j in range(n))
            r = m.node(1).memory.alloc(n)
            l = m.node(0).memory.alloc(n)
            m.node(1).memory.write(r, d)
            remotes.append(r), locals_.append(l), datas.append(d)

        def prog(rank):
            def go():
                if rank == 0:
                    for i in range(k):
                        yield from rts[0].get_bulk(
                            locals_[i], GlobalPtr(1, remotes[i]), n)
                    yield from rts[0].sync()
                yield from rts[rank].barrier()
            return go()

        run_spmd(m, prog)
        for i in range(k):
            assert m.node(0).memory.read(locals_[i], n) == datas[i]


class TestStores:
    def test_store_bulk_all_store_sync(self, stack4):
        m, rts = stack4
        nprocs = m.nprocs
        n = 1500
        # every rank stores its pattern to rank+1's slot array
        slots = [node.memory.alloc(n * nprocs) for node in m.nodes]

        def prog(rank):
            def go():
                rt = rts[rank]
                data = bytes([rank + 1]) * n
                src = m.node(rank).memory.alloc(n)
                m.node(rank).memory.write(src, data)
                dstproc = (rank + 1) % nprocs
                gp = GlobalPtr(dstproc, slots[dstproc] + rank * n)
                yield from rt.store_bulk(gp, src, n)
                yield from rt.all_store_sync()
            return go()

        run_spmd(m, prog)
        for rank in range(nprocs):
            dstproc = (rank + 1) % nprocs
            got = m.node(dstproc).memory.read(slots[dstproc] + rank * n, n)
            assert got == bytes([rank + 1]) * n

    def test_store_word_fine_grain(self):
        m, rts = build_stack("sp-am", 2)
        k = 50
        arr = m.node(1).memory.alloc(8 * k)

        def prog(rank):
            def go():
                rt = rts[rank]
                if rank == 0:
                    for i in range(k):
                        yield from rt.store_word(GlobalPtr(1, arr + 8 * i), i * i)
                yield from rt.all_store_sync()
            return go()

        run_spmd(m, prog)
        vals = struct.unpack(f"<{k}q", m.node(1).memory.read(arr, 8 * k))
        assert list(vals) == [i * i for i in range(k)]

    def test_store_sync_local_expectation(self):
        m, rts = build_stack("sp-am", 2)
        n = 4000
        dst = m.node(1).memory.alloc(n)
        src = m.node(0).memory.alloc(n)
        order = []

        def prog(rank):
            def go():
                rt = rts[rank]
                if rank == 0:
                    yield from rt.store_bulk(GlobalPtr(1, dst), src, n)
                    yield from rt.sync()
                    order.append("sent")
                else:
                    yield from rt.store_sync(n)
                    order.append("received")
            return go()

        run_spmd(m, prog)
        assert sorted(order) == ["received", "sent"]


class TestCollectives:
    @pytest.mark.parametrize("nprocs", [2, 4, 7])
    def test_barrier_rendezvous(self, nprocs):
        m, rts = build_stack("sp-am", nprocs)
        times = {}

        def prog(rank):
            def go():
                from repro.sim import Delay
                yield Delay(100.0 * rank)  # skewed arrivals
                yield from rts[rank].barrier()
                times[rank] = m.sim.now
            return go()

        run_spmd(m, prog)
        # nobody leaves the barrier before the last arrival
        assert min(times.values()) >= 100.0 * (nprocs - 1)

    def test_repeated_barriers_stay_aligned(self):
        m, rts = build_stack("sp-am", 4)
        log = []

        def prog(rank):
            def go():
                for it in range(5):
                    yield from rts[rank].barrier()
                    log.append((it, rank))
            return go()

        run_spmd(m, prog)
        # all ranks finish iteration k before any finishes k+1
        for k in range(5):
            chunk = log[4 * k: 4 * (k + 1)]
            assert {it for it, _ in chunk} == {k}

    def test_allreduce_int(self, stack4):
        m, rts = stack4
        results = {}

        def prog(rank):
            def go():
                v = yield from rts[rank].allreduce_int((rank + 1) ** 2)
                results[rank] = v
            return go()

        run_spmd(m, prog)
        expected = sum((r + 1) ** 2 for r in range(m.nprocs))
        assert all(v == expected for v in results.values())

    def test_broadcast_int(self):
        m, rts = build_stack("sp-am", 4)
        results = {}

        def prog(rank):
            def go():
                v = yield from rts[rank].broadcast_int(
                    31337 if rank == 0 else None)
                results[rank] = v
            return go()

        run_spmd(m, prog)
        assert all(v == 31337 for v in results.values())


class TestProfiler:
    def test_cpu_net_split(self):
        m, rts = build_stack("sp-am", 2)
        n = 8064
        dst = m.node(1).memory.alloc(n)
        src = m.node(0).memory.alloc(n)

        def prog(rank):
            def go():
                rt = rts[rank]
                rt.profile.start()
                if rank == 0:
                    yield from rt.profile.compute(500.0)
                    yield from rt.store_bulk(GlobalPtr(1, dst), src, n)
                    yield from rt.sync()
                yield from rt.barrier()
                rt.profile.stop()
            return go()

        run_spmd(m, prog)
        cpu, net, total = rts[0].profile.split()
        assert cpu == pytest.approx(500.0)
        assert net > 100.0  # the 8 KB store + barrier costs real time
        assert total == pytest.approx(cpu + net)
